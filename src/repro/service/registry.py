"""Named, parameterized registries for routers and devices.

Batch jobs (:mod:`repro.service.jobs`) describe their router and target device
with *specs* — a registered name or a ``{"name": ..., "params": {...}}`` dict —
instead of live objects, so a job can cross a process boundary, be hashed into
a cache key and be replayed later.  The registries turn specs back into
objects:

>>> build_router("codar").name
'codar'
>>> build_device({"name": "grid", "params": {"rows": 2, "cols": 3}}).num_qubits
6

Both registries are extensible at runtime (``ROUTERS.register(...)``), in the
spirit of pluggable hardware cost-model registries: an experiment can register
a custom router variant under a new name and submit jobs against it without
touching the service code.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Mapping

from repro.arch.devices import Device, get_device, list_devices
from repro.mapping.astar.remapper import AStarConfig, AStarRouter
from repro.mapping.base import Router
from repro.mapping.codar.noise_aware import NoiseAwareCodarRouter, NoiseAwareConfig
from repro.mapping.codar.remapper import CodarConfig, CodarRouter
from repro.mapping.sabre.remapper import SabreConfig, SabreRouter
from repro.mapping.trivial import TrivialRouter


class Registry:
    """A name → factory table with canonical spec normalisation.

    A *spec* is either a registered name (``"codar"``) or a mapping with a
    ``"name"`` key and optional parameters, given inline or under
    ``"params"``.  :meth:`normalize` collapses both forms into the canonical
    ``{"name": str, "params": dict}`` shape used for hashing, and
    :meth:`build` calls the registered factory with the params as keyword
    arguments (so unknown parameters fail loudly in the factory's signature).
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}
        self._descriptions: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def register(self, name: str, factory: Callable[..., Any],
                 description: str = "", overwrite: bool = False) -> None:
        name = self._canonical_name(name)
        if name in self._factories and not overwrite:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._factories[name] = factory
        self._descriptions[name] = description

    def names(self) -> list[str]:
        return sorted(self._factories)

    def describe(self, name: str) -> str:
        return self._descriptions.get(self._canonical_name(name), "")

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._canonical_name(name) in self._factories

    @staticmethod
    def _canonical_name(name: str) -> str:
        return name.replace("-", "_").strip()

    # ------------------------------------------------------------------ #
    def normalize(self, spec: str | Mapping) -> dict:
        """Canonicalise a spec into ``{"name": str, "params": dict}``."""
        if isinstance(spec, str):
            name, params = self._canonical_name(spec), {}
        elif isinstance(spec, Mapping):
            data = dict(spec)
            if "name" not in data:
                raise ValueError(f"{self.kind} spec needs a 'name' key: {spec!r}")
            name = self._canonical_name(str(data.pop("name")))
            params = dict(data.pop("params", {}))
            params.update(data)  # inline parameters are also accepted
        else:
            raise TypeError(f"cannot interpret {spec!r} as a {self.kind} spec")
        if name not in self._factories:
            raise KeyError(f"unknown {self.kind} {name!r}; known: {self.names()}")
        return {"name": name, "params": params}

    def key(self, spec: str | Mapping) -> str:
        """Stable canonical-JSON form of a spec (used for cache keys)."""
        return json.dumps(self.normalize(spec), sort_keys=True)

    def build(self, spec: str | Mapping) -> Any:
        normalized = self.normalize(spec)
        return self._factories[normalized["name"]](**normalized["params"])


# --------------------------------------------------------------------------- #
# Router registry
# --------------------------------------------------------------------------- #
def _codar_factory(**params) -> CodarRouter:
    return CodarRouter(CodarConfig(**params)) if params else CodarRouter()


def _noise_aware_factory(**params) -> NoiseAwareCodarRouter:
    if params:
        return NoiseAwareCodarRouter(config=NoiseAwareConfig(**params))
    return NoiseAwareCodarRouter()


def _sabre_factory(**params) -> SabreRouter:
    return SabreRouter(SabreConfig(**params)) if params else SabreRouter()


def _astar_factory(**params) -> AStarRouter:
    return AStarRouter(AStarConfig(**params)) if params else AStarRouter()


ROUTERS = Registry("router")
ROUTERS.register("codar", _codar_factory,
                 "context-sensitive duration-aware remapper (the paper)")
ROUTERS.register("codar_noise_aware", _noise_aware_factory,
                 "CODAR with per-edge fidelity filtering")
ROUTERS.register("sabre", _sabre_factory, "SWAP-based bidirectional heuristic")
ROUTERS.register("astar", _astar_factory, "layer-by-layer A* search")
ROUTERS.register("trivial", lambda: TrivialRouter(),
                 "shortest-path SWAP chains")


def router_spec(router: str | Mapping | Router) -> dict:
    """Canonical spec for a router name, spec dict or live :class:`Router`.

    A live router is identified by its registered ``name`` with default
    parameters; pass a spec dict to describe a non-default configuration.
    """
    if isinstance(router, Router):
        return ROUTERS.normalize(router.name)
    return ROUTERS.normalize(router)


def build_router(spec: str | Mapping | Router) -> Router:
    if isinstance(spec, Router):
        return spec
    return ROUTERS.build(spec)


# --------------------------------------------------------------------------- #
# Device registry
# --------------------------------------------------------------------------- #
DEVICES = Registry("device")
for _name in list_devices():
    DEVICES.register(_name, lambda _n=_name: get_device(_n),
                     get_device(_name).description)
DEVICES.register("grid", lambda rows, cols: get_device("grid", rows=rows, cols=cols),
                 "parametric rows x cols square lattice")
DEVICES.register("line", lambda num_qubits: get_device("line", num_qubits=num_qubits),
                 "parametric qubit chain")
DEVICES.register("ring", lambda num_qubits: get_device("ring", num_qubits=num_qubits),
                 "parametric qubit ring")

#: Names the parametric families stamp onto their devices ("grid_2x3",
#: "line_8", "ring_5"); parsed back into specs so a Device built outside the
#: registry still round-trips through a job description.
_GRID_NAME = re.compile(r"^grid_(\d+)x(\d+)$")
_LINE_NAME = re.compile(r"^line_(\d+)$")
_RING_NAME = re.compile(r"^ring_(\d+)$")


def _same_device_model(device: Device, built: Device) -> bool:
    """True when ``device`` is behaviourally the registry's model: identical
    coupling and gate timings (the two inputs every router consumes)."""
    ours, theirs = device.durations, built.durations
    return (device.num_qubits == built.num_qubits
            and device.coupling.edges == built.coupling.edges
            and (ours.single, ours.two, ours.swap, ours.measure, ours.overrides)
            == (theirs.single, theirs.two, theirs.swap, theirs.measure,
                theirs.overrides))


def device_spec(device: str | Mapping | Device) -> dict:
    """Canonical spec for a device name, spec dict or live :class:`Device`.

    A live device is identified by its name, but only when it actually
    matches the registry's model for that name — a customized instance
    (e.g. :meth:`Device.with_durations`) raises instead of being silently
    swapped for the stock device.
    """
    if isinstance(device, Device):
        spec = device_spec(device.name)
        if not _same_device_model(device, DEVICES.build(spec)):
            raise ValueError(
                f"device {device.name!r} differs from the registered model of "
                "that name; describe it with a spec dict or route it directly")
        return spec
    name = device
    if isinstance(name, str) and name not in DEVICES:
        if match := _GRID_NAME.match(name):
            return DEVICES.normalize({"name": "grid",
                                      "rows": int(match.group(1)),
                                      "cols": int(match.group(2))})
        if match := _LINE_NAME.match(name):
            return DEVICES.normalize({"name": "line",
                                      "num_qubits": int(match.group(1))})
        if match := _RING_NAME.match(name):
            return DEVICES.normalize({"name": "ring",
                                      "num_qubits": int(match.group(1))})
    return DEVICES.normalize(name)


def build_device(spec: str | Mapping | Device) -> Device:
    if isinstance(spec, Device):
        return spec
    return DEVICES.build(device_spec(spec))
