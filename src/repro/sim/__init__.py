"""Simulators: timing (ASAP scheduling), ideal state vectors and noisy evolution.

* :mod:`repro.sim.scheduler` — as-soon-as-possible scheduling under a gate
  duration map; produces the weighted depth used as the paper's speed metric,
* :mod:`repro.sim.statevector` — ideal state-vector simulation (equivalence
  checks, fidelity references),
* :mod:`repro.sim.noise` — dephasing and amplitude-damping Kraus channels,
* :mod:`repro.sim.density_matrix` — density-matrix simulation with per-gate,
  duration-scaled noise (the stand-in for the OriginQ noisy virtual machine),
* :mod:`repro.sim.fidelity` — end-to-end fidelity evaluation of routed
  circuits (Fig. 9).
"""

from repro.sim.scheduler import alap_schedule, asap_schedule, Schedule, ScheduledGate
from repro.sim.statevector import StatevectorSimulator, random_product_state
from repro.sim.noise import NoiseModel, dephasing_kraus, amplitude_damping_kraus
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.fidelity import circuit_fidelity, routed_fidelity
from repro.sim.sampling import (hellinger_fidelity, sample_counts,
                                total_variation_distance)
from repro.sim.success import SuccessEstimate, compare_success, estimate_success

__all__ = [
    "hellinger_fidelity",
    "sample_counts",
    "total_variation_distance",
    "alap_schedule",
    "asap_schedule",
    "Schedule",
    "ScheduledGate",
    "SuccessEstimate",
    "compare_success",
    "estimate_success",
    "StatevectorSimulator",
    "random_product_state",
    "NoiseModel",
    "dephasing_kraus",
    "amplitude_damping_kraus",
    "DensityMatrixSimulator",
    "circuit_fidelity",
    "routed_fidelity",
]
