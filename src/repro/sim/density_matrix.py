"""Noisy density-matrix simulation driven by the gate schedule.

This is the reproduction's stand-in for the OriginQ noisy quantum virtual
machine used in Fig. 9.  The simulator replays the ASAP schedule of a circuit:
every gate's unitary is applied at its scheduled start, and decoherence
channels (dephasing / amplitude damping from a :class:`~repro.sim.noise.NoiseModel`)
act on each qubit for exactly the wall-clock time it spends idle or inside a
gate.  Because the accumulated noise is proportional to the schedule's
makespan, a routing that finishes earlier (CODAR) retains more fidelity than a
slower one (SABRE) under dephasing-dominant noise — the effect Fig. 9 shows.

Density matrices scale as ``4**n``; the simulator is intended for the small
(3–6 qubit) algorithm instances of the fidelity experiment.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.unitary import gate_unitary
from repro.sim.noise import NoiseModel
from repro.sim.scheduler import Schedule, asap_schedule


class DensityMatrixSimulator:
    """Exact open-system simulator for small circuits."""

    def __init__(self, noise_model: NoiseModel | None = None, max_qubits: int = 10):
        self.noise_model = noise_model or NoiseModel.noiseless()
        self.max_qubits = max_qubits

    # ------------------------------------------------------------------ #
    # Elementary operations
    # ------------------------------------------------------------------ #
    @staticmethod
    def _initial_density(num_qubits: int) -> np.ndarray:
        dim = 1 << num_qubits
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        return rho

    @staticmethod
    def _expand_single(matrix: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
        """Embed a 2x2 operator acting on ``qubit`` into the full space."""
        op = np.array([[1.0]], dtype=complex)
        for q in reversed(range(num_qubits)):
            op = np.kron(op, matrix if q == qubit else np.eye(2, dtype=complex))
        return op

    def _apply_unitary(self, rho: np.ndarray, gate: Gate, num_qubits: int
                       ) -> np.ndarray:
        from repro.core.unitary import expand_to

        full = expand_to(gate_unitary(gate), gate.qubits, num_qubits)
        return full @ rho @ full.conj().T

    def _apply_kraus(self, rho: np.ndarray, kraus: list[np.ndarray], qubit: int,
                     num_qubits: int) -> np.ndarray:
        result = np.zeros_like(rho)
        for k in kraus:
            full = self._expand_single(k, qubit, num_qubits)
            result += full @ rho @ full.conj().T
        return result

    def _apply_noise_interval(self, rho: np.ndarray, qubit: int, duration: float,
                              num_qubits: int, channels: list[list[np.ndarray]]
                              ) -> np.ndarray:
        for kraus in channels:
            rho = self._apply_kraus(rho, kraus, qubit, num_qubits)
        return rho

    # ------------------------------------------------------------------ #
    # Schedule replay
    # ------------------------------------------------------------------ #
    def run_schedule(self, schedule: Schedule, num_qubits: int) -> np.ndarray:
        """Replay a timed schedule and return the final density matrix."""
        if num_qubits > self.max_qubits:
            raise ValueError(f"{num_qubits} qubits exceeds the density-matrix "
                             f"limit of {self.max_qubits}")
        noise = self.noise_model
        rho = self._initial_density(num_qubits)
        last_updated = [0.0] * num_qubits
        ordered = sorted(schedule.gates, key=lambda sg: (sg.start, sg.finish))
        for scheduled in ordered:
            gate = scheduled.gate
            if gate.is_barrier:
                continue
            # 1. idle decoherence on the gate's qubits up to the gate start.
            for q in gate.qubits:
                idle = scheduled.start - last_updated[q]
                if idle > 0 and not noise.is_noiseless:
                    rho = self._apply_noise_interval(
                        rho, q, idle, num_qubits, noise.idle_channels(idle))
                last_updated[q] = scheduled.start
            # 2. the gate itself (measurements and resets act as identity here;
            #    fidelity is evaluated on the pre-measurement state).
            if not gate.is_measure and gate.name != "reset":
                rho = self._apply_unitary(rho, gate, num_qubits)
            # 3. decoherence during the gate, on the gate's qubits.
            if not noise.is_noiseless and scheduled.duration > 0:
                channels = noise.gate_channels(scheduled.duration, gate.num_qubits)
                for q in gate.qubits:
                    rho = self._apply_noise_interval(
                        rho, q, scheduled.duration, num_qubits, channels)
            for q in gate.qubits:
                last_updated[q] = scheduled.finish
        # 4. trailing idle decoherence up to the makespan.
        if not noise.is_noiseless:
            for q in range(num_qubits):
                idle = schedule.makespan - last_updated[q]
                if idle > 0:
                    rho = self._apply_noise_interval(
                        rho, q, idle, num_qubits, noise.idle_channels(idle))
        return rho

    def run(self, circuit: Circuit, durations) -> np.ndarray:
        """Schedule ``circuit`` under ``durations`` and replay it with noise."""
        schedule = asap_schedule(circuit, durations)
        return self.run_schedule(schedule, circuit.num_qubits)

    # ------------------------------------------------------------------ #
    # Observables
    # ------------------------------------------------------------------ #
    @staticmethod
    def fidelity_with_state(rho: np.ndarray, state: np.ndarray) -> float:
        """``<ψ| ρ |ψ>`` — fidelity of a mixed state against a pure reference."""
        return float(np.real(np.conj(state) @ rho @ state))

    @staticmethod
    def purity(rho: np.ndarray) -> float:
        return float(np.real(np.trace(rho @ rho)))
