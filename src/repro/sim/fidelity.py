"""End-to-end fidelity evaluation of routed circuits (the Fig. 9 pipeline).

For a routing result the fidelity is computed as follows:

1. the *reference* state is the ideal (noiseless) output of the original
   logical circuit;
2. the routed circuit is rewritten onto logical qubits (SWAPs folded into the
   tracked permutation — physically the SWAPs are still scheduled and still
   cost time, see step 3);
3. the routed *physical* circuit is ASAP-scheduled with the device's duration
   map and replayed on the noisy density-matrix simulator;
4. the resulting mixed state is compared against the reference state embedded
   through the final layout, giving ``F = <ψ_ref| ρ |ψ_ref>``.

Because both routers are evaluated with the same noise model and duration
map, differences in fidelity come from how long their schedules take and how
many noisy SWAPs they insert — exactly the trade-off Fig. 9 examines.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit
from repro.mapping.base import RoutingResult
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.noise import NoiseModel
from repro.sim.scheduler import asap_schedule
from repro.sim.statevector import StatevectorSimulator


def circuit_fidelity(circuit: Circuit, durations, noise_model: NoiseModel,
                     reference: np.ndarray | None = None) -> float:
    """Fidelity of a circuit run under noise against its own ideal output."""
    clean = circuit.without_measurements()
    if reference is None:
        reference = StatevectorSimulator().run(clean)
    simulator = DensityMatrixSimulator(noise_model)
    rho = simulator.run(clean, durations)
    return DensityMatrixSimulator.fidelity_with_state(rho, reference)


def _embedded_reference(result: RoutingResult) -> np.ndarray:
    """Ideal output of the original circuit, expressed on the physical register.

    The routed circuit ends with logical qubit ``l`` sitting on physical qubit
    ``final_layout.physical(l)``; padding physical qubits stay in |0>.  The
    reference state is permuted accordingly so it can be compared directly
    against the noisy physical-state density matrix.
    """
    original = result.original.without_measurements()
    ideal_logical = StatevectorSimulator().run(original)
    n_logical = original.num_qubits
    n_physical = result.device.num_qubits
    layout = result.final_layout
    dim = 1 << n_physical
    reference = np.zeros(dim, dtype=complex)
    for logical_index in range(1 << n_logical):
        amplitude = ideal_logical[logical_index]
        if amplitude == 0:
            continue
        physical_index = 0
        for logical_qubit in range(n_logical):
            if (logical_index >> logical_qubit) & 1:
                physical_index |= 1 << layout.physical(logical_qubit)
        reference[physical_index] = amplitude
    return reference


def routed_fidelity(result: RoutingResult, noise_model: NoiseModel,
                    durations=None, max_qubits: int = 10) -> float:
    """Fidelity of a routing result's physical circuit under a noise model.

    ``durations`` defaults to the device's own duration map.  The physical
    circuit (including inserted SWAPs) is scheduled and simulated with noise;
    the comparison state is the ideal logical output embedded through the
    final layout.
    """
    durations = durations if durations is not None else result.device.durations
    physical = result.routed.without_measurements()
    if physical.num_qubits > max_qubits:
        raise ValueError(
            f"fidelity simulation limited to {max_qubits} physical qubits; "
            f"device has {physical.num_qubits}")
    reference = _embedded_reference(result)
    simulator = DensityMatrixSimulator(noise_model, max_qubits=max_qubits)
    schedule = asap_schedule(physical, durations)
    rho = simulator.run_schedule(schedule, physical.num_qubits)
    return DensityMatrixSimulator.fidelity_with_state(rho, reference)
