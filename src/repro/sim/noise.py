"""Noise channels: qubit dephasing and amplitude damping.

The paper's fidelity experiment (Fig. 9) uses OriginQ's noisy virtual machine,
"based on Qubit Dephasing and Damping model [Nielsen & Chuang]".  This module
provides the same two single-qubit channels as Kraus operators whose strength
grows with elapsed time, so that a circuit with a smaller weighted depth
accumulates less noise — the effect CODAR exploits.

* amplitude damping (energy relaxation, T1):
  ``γ(Δt) = 1 − exp(−Δt / T1)``
* phase damping (dephasing, T2):
  ``λ(Δt) = 1 − exp(−Δt / T2)``

A :class:`NoiseModel` combines both (either can be disabled with an infinite
time constant) plus an optional per-gate depolarising error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def amplitude_damping_kraus(gamma: float) -> list[np.ndarray]:
    """Kraus operators of the amplitude-damping channel with parameter ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be within [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def dephasing_kraus(lam: float) -> list[np.ndarray]:
    """Kraus operators of the phase-damping channel with parameter ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be within [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def depolarizing_kraus(probability: float) -> list[np.ndarray]:
    """Kraus operators of the single-qubit depolarising channel."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    identity = np.eye(2, dtype=complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    return [
        math.sqrt(1.0 - 3.0 * probability / 4.0) * identity,
        math.sqrt(probability / 4.0) * x,
        math.sqrt(probability / 4.0) * y,
        math.sqrt(probability / 4.0) * z,
    ]


@dataclass(frozen=True)
class NoiseModel:
    """Time-driven decoherence model applied per qubit.

    Parameters
    ----------
    t1:
        Amplitude-damping time constant in scheduler cycles
        (``math.inf`` disables damping).
    t2:
        Dephasing time constant in cycles (``math.inf`` disables dephasing).
    gate_error_1q / gate_error_2q:
        Extra depolarising error applied to the qubits of each one-/two-qubit
        gate, independent of duration (models control imperfection).
    """

    t1: float = math.inf
    t2: float = math.inf
    gate_error_1q: float = 0.0
    gate_error_2q: float = 0.0

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise ValueError("T1 and T2 must be positive")
        for err in (self.gate_error_1q, self.gate_error_2q):
            if not 0.0 <= err <= 1.0:
                raise ValueError("gate errors must be probabilities")

    # ------------------------------------------------------------------ #
    @classmethod
    def dephasing_dominant(cls, t2: float, gate_error_2q: float = 0.0) -> "NoiseModel":
        """Noise dominated by dephasing (the left panel regime of Fig. 9)."""
        return cls(t1=math.inf, t2=t2, gate_error_2q=gate_error_2q)

    @classmethod
    def damping_dominant(cls, t1: float, gate_error_2q: float = 0.0) -> "NoiseModel":
        """Noise dominated by amplitude damping (the right panel regime of Fig. 9)."""
        return cls(t1=t1, t2=math.inf, gate_error_2q=gate_error_2q)

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        return cls()

    @property
    def is_noiseless(self) -> bool:
        return (math.isinf(self.t1) and math.isinf(self.t2)
                and self.gate_error_1q == 0.0 and self.gate_error_2q == 0.0)

    # ------------------------------------------------------------------ #
    def idle_channels(self, duration: float) -> list[list[np.ndarray]]:
        """Kraus channel list for ``duration`` cycles of idling on one qubit."""
        channels: list[list[np.ndarray]] = []
        if duration <= 0:
            return channels
        if not math.isinf(self.t1):
            gamma = 1.0 - math.exp(-duration / self.t1)
            channels.append(amplitude_damping_kraus(gamma))
        if not math.isinf(self.t2):
            lam = 1.0 - math.exp(-duration / self.t2)
            channels.append(dephasing_kraus(lam))
        return channels

    def gate_channels(self, duration: float, num_qubits: int) -> list[list[np.ndarray]]:
        """Kraus channels applied to each qubit of a gate of ``duration`` cycles."""
        channels = self.idle_channels(duration)
        error = self.gate_error_2q if num_qubits == 2 else self.gate_error_1q
        if error > 0.0:
            channels.append(depolarizing_kraus(error))
        return channels
