"""Shot-based measurement sampling and distribution comparison.

Real devices (and the OriginQ virtual machine the paper uses) return *counts*
— a histogram over measured bit-strings — rather than amplitudes.  This module
samples counts from the ideal simulators so examples and tests can compare a
routed circuit against its logical original the same way an experimentalist
would:

* :func:`sample_counts` — multinomial shots from a state vector (respecting
  the circuit's measurement map, so a routed circuit's physical bits land back
  on the right classical bits),
* :func:`counts_from_density` — exact probabilities / sampled shots from a
  density matrix (for noisy runs),
* :func:`hellinger_fidelity` and :func:`total_variation_distance` — the two
  standard figures of merit for comparing count distributions.

Bit-string keys are little-endian (classical bit 0 is the right-most
character), matching the OpenQASM ``creg`` convention used by the exporter.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping

import numpy as np

from repro.core.circuit import Circuit
from repro.sim.statevector import StatevectorSimulator


def _measurement_map(circuit: Circuit) -> dict[int, int]:
    """Map classical bit -> measured qubit (last measurement wins, like QASM)."""
    mapping: dict[int, int] = {}
    for gate in circuit.gates:
        if gate.is_measure and gate.cbits:
            mapping[gate.cbits[0]] = gate.qubits[0]
    return mapping


def _format_bits(value: int, width: int) -> str:
    return format(value, f"0{width}b")


def probabilities_over_cbits(circuit: Circuit, state: np.ndarray | None = None
                             ) -> dict[str, float]:
    """Exact outcome probabilities marginalised onto the measured classical bits.

    Qubits that are never measured are traced out.  A circuit without
    measurements is treated as measure-all (classical bit ``i`` ← qubit ``i``).
    """
    simulator = StatevectorSimulator()
    if state is None:
        state = simulator.run(circuit.without_measurements())
    amplitudes = np.abs(np.asarray(state)) ** 2
    mapping = _measurement_map(circuit)
    if not mapping:
        mapping = {q: q for q in range(circuit.num_qubits)}
    width = max(mapping) + 1
    outcome: dict[str, float] = {}
    for basis_index, probability in enumerate(amplitudes):
        if probability == 0.0:
            continue
        bits = 0
        for cbit, qubit in mapping.items():
            if (basis_index >> qubit) & 1:
                bits |= 1 << cbit
        key = _format_bits(bits, width)
        outcome[key] = outcome.get(key, 0.0) + float(probability)
    return outcome


def sample_counts(circuit: Circuit, shots: int = 1024,
                  seed: int | None = None) -> Counter:
    """Sample ``shots`` measurement outcomes from the ideal final state."""
    if shots <= 0:
        raise ValueError("shots must be positive")
    probabilities = probabilities_over_cbits(circuit)
    keys = sorted(probabilities)
    weights = np.array([probabilities[k] for k in keys])
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    draws = rng.multinomial(shots, weights)
    return Counter({key: int(count) for key, count in zip(keys, draws) if count})


def counts_from_density(rho: np.ndarray, num_qubits: int, shots: int = 0,
                        seed: int | None = None) -> dict[str, float] | Counter:
    """Outcome distribution of a density matrix (all qubits measured).

    With ``shots == 0`` the exact probabilities are returned; otherwise a
    multinomial sample of that distribution.
    """
    probabilities = np.real(np.diag(rho)).clip(min=0.0)
    probabilities = probabilities / probabilities.sum()
    keys = [_format_bits(i, num_qubits) for i in range(len(probabilities))]
    if shots <= 0:
        return {key: float(p) for key, p in zip(keys, probabilities) if p > 0}
    rng = np.random.default_rng(seed)
    draws = rng.multinomial(shots, probabilities)
    return Counter({key: int(count) for key, count in zip(keys, draws) if count})


def _normalise(counts: Mapping[str, float]) -> dict[str, float]:
    total = float(sum(counts.values()))
    if total <= 0:
        raise ValueError("counts must contain at least one shot")
    return {key: value / total for key, value in counts.items()}


def hellinger_fidelity(counts_a: Mapping[str, float],
                       counts_b: Mapping[str, float]) -> float:
    """``(Σ sqrt(p_i q_i))^2`` — 1.0 for identical distributions, 0.0 for disjoint."""
    p = _normalise(counts_a)
    q = _normalise(counts_b)
    overlap = sum(math.sqrt(p.get(key, 0.0) * q.get(key, 0.0))
                  for key in set(p) | set(q))
    return overlap ** 2


def total_variation_distance(counts_a: Mapping[str, float],
                             counts_b: Mapping[str, float]) -> float:
    """``0.5 Σ |p_i − q_i|`` — 0.0 for identical distributions, 1.0 for disjoint."""
    p = _normalise(counts_a)
    q = _normalise(counts_b)
    return 0.5 * sum(abs(p.get(key, 0.0) - q.get(key, 0.0))
                     for key in set(p) | set(q))
