"""ASAP scheduling under a gate duration map → weighted circuit depth.

The "real execution time of the circuit is associated with the weighted
depth, in which different gates have different duration weights" (Section I).
This module turns a gate sequence into a timed schedule: every gate starts as
soon as all of its qubits are free and occupies them for its duration.  The
*makespan* (finish time of the last gate) is the weighted depth, the metric
both Fig. 8 and the examples report.

The scheduler treats each qubit as a serial resource and gates as
non-preemptible — exactly the same execution model as CODAR's qubit locks, so
a schedule replays what the hardware (or the OriginQ virtual machine) would
do with the routed gate stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.circuit import Circuit
from repro.core.gates import Gate


@dataclass(frozen=True)
class ScheduledGate:
    """One gate with its start and finish times (in cycles)."""

    gate: Gate
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class Schedule:
    """A timed gate sequence."""

    gates: list[ScheduledGate]
    makespan: float
    num_qubits: int

    def busy_time(self, qubit: int) -> float:
        """Total time ``qubit`` spends inside gates."""
        return sum(sg.duration for sg in self.gates if qubit in sg.gate.qubits)

    def idle_time(self, qubit: int) -> float:
        """Time ``qubit`` spends idle between t=0 and the makespan."""
        return self.makespan - self.busy_time(qubit)

    def parallelism(self) -> float:
        """Average number of simultaneously busy qubits (gate-time / makespan)."""
        if self.makespan == 0:
            return 0.0
        total = sum(sg.duration * len(sg.gate.qubits) for sg in self.gates)
        return total / self.makespan

    def gates_at(self, time: float) -> list[ScheduledGate]:
        """Gates executing at a given instant (start inclusive, finish exclusive)."""
        return [sg for sg in self.gates if sg.start <= time < sg.finish]

    def as_rows(self) -> list[dict]:
        """Flat dict rows for reporting."""
        return [
            {"gate": sg.gate.name, "qubits": sg.gate.qubits,
             "start": sg.start, "finish": sg.finish}
            for sg in self.gates
        ]


def _duration_lookup(durations) -> "callable":
    """Accept either a GateDurationMap or a plain name→duration mapping."""
    if hasattr(durations, "duration_of"):
        return durations.duration_of
    if isinstance(durations, Mapping):
        def lookup(gate: Gate | str) -> float:
            name = gate if isinstance(gate, str) else gate.name
            if name in durations:
                return durations[name]
            if name in ("barrier",):
                return 0.0
            raise KeyError(f"no duration for gate {name!r}")
        return lookup
    raise TypeError("durations must be a GateDurationMap or a mapping")


def asap_schedule(circuit: Circuit | Sequence[Gate], durations) -> Schedule:
    """Schedule gates as soon as possible and return the timed sequence.

    ``circuit`` may be a :class:`Circuit` or a plain gate sequence; in the
    latter case the number of qubits is inferred.  Barriers synchronise all of
    their qubits (or every qubit seen so far for a bare barrier) at zero cost.
    """
    lookup = _duration_lookup(durations)
    if isinstance(circuit, Circuit):
        gates: Iterable[Gate] = circuit.gates
        num_qubits = circuit.num_qubits
    else:
        gates = list(circuit)
        num_qubits = 1 + max((max(g.qubits) for g in gates if g.qubits), default=-1)

    available = [0.0] * max(num_qubits, 1)
    scheduled: list[ScheduledGate] = []
    makespan = 0.0
    for gate in gates:
        if gate.is_barrier:
            qubits = gate.qubits if gate.qubits else tuple(range(num_qubits))
            sync = max((available[q] for q in qubits), default=0.0)
            for q in qubits:
                available[q] = sync
            scheduled.append(ScheduledGate(gate, sync, sync))
            continue
        if not gate.qubits:
            continue
        start = max(available[q] for q in gate.qubits)
        finish = start + lookup(gate)
        for q in gate.qubits:
            available[q] = finish
        scheduled.append(ScheduledGate(gate, start, finish))
        if finish > makespan:
            makespan = finish
    return Schedule(gates=scheduled, makespan=makespan, num_qubits=num_qubits)


def alap_schedule(circuit: Circuit | Sequence[Gate], durations) -> Schedule:
    """Schedule gates as late as possible within the ASAP makespan.

    ALAP keeps the same weighted depth as ASAP but pushes every gate towards
    the end of the circuit, which minimises the time qubits spend idle *after*
    their state has been prepared — the schedule shape preferred when
    dephasing dominates (idle qubits decay).  The experiments use it to show
    that the weighted-depth metric itself is schedule-invariant while the
    decoherence exposure is not.
    """
    lookup = _duration_lookup(durations)
    forward = asap_schedule(circuit, durations)
    makespan = forward.makespan
    if isinstance(circuit, Circuit):
        gates: list[Gate] = list(circuit.gates)
        num_qubits = circuit.num_qubits
    else:
        gates = list(circuit)
        num_qubits = 1 + max((max(g.qubits) for g in gates if g.qubits), default=-1)

    # Walk the gates backwards: each gate finishes as late as its qubits allow.
    deadline = [makespan] * max(num_qubits, 1)
    reversed_schedule: list[ScheduledGate] = []
    for gate in reversed(gates):
        if gate.is_barrier:
            qubits = gate.qubits if gate.qubits else tuple(range(num_qubits))
            sync = min((deadline[q] for q in qubits), default=makespan)
            for q in qubits:
                deadline[q] = sync
            reversed_schedule.append(ScheduledGate(gate, sync, sync))
            continue
        if not gate.qubits:
            continue
        finish = min(deadline[q] for q in gate.qubits)
        start = finish - lookup(gate)
        for q in gate.qubits:
            deadline[q] = start
        reversed_schedule.append(ScheduledGate(gate, start, finish))
    scheduled = list(reversed(reversed_schedule))
    return Schedule(gates=scheduled, makespan=makespan, num_qubits=num_qubits)


def weighted_depth(circuit: Circuit | Sequence[Gate], durations) -> float:
    """Shorthand for ``asap_schedule(circuit, durations).makespan``."""
    return asap_schedule(circuit, durations).makespan


def critical_path(schedule: Schedule) -> list[ScheduledGate]:
    """One chain of gates realising the makespan (for reports and debugging)."""
    if not schedule.gates:
        return []
    # Walk backwards from a gate finishing at the makespan, each time jumping
    # to a predecessor on one of its qubits that finishes exactly at our start.
    by_finish: dict[float, list[ScheduledGate]] = {}
    for sg in schedule.gates:
        by_finish.setdefault(sg.finish, []).append(sg)
    current = max(schedule.gates, key=lambda sg: sg.finish)
    chain = [current]
    while current.start > 0:
        predecessors = [
            sg for sg in by_finish.get(current.start, [])
            if set(sg.gate.qubits) & set(current.gate.qubits)
        ]
        if not predecessors:
            break
        current = predecessors[0]
        chain.append(current)
    return list(reversed(chain))
