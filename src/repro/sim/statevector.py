"""Ideal state-vector simulation.

Used for three things:

* routing verification (original vs. routed circuit on random product states),
* the noiseless reference states of the fidelity experiment (Fig. 9), and
* unit tests of the gate library itself.

The simulator applies gates in place on a ``2**n`` complex vector with a
little-endian qubit convention (qubit 0 = least-significant bit), matching
:mod:`repro.core.unitary`.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.unitary import gate_unitary


def zero_state(num_qubits: int) -> np.ndarray:
    """|0...0> on ``num_qubits`` qubits."""
    state = np.zeros(1 << num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def random_product_state(num_qubits: int, rng: np.random.Generator | None = None
                         ) -> np.ndarray:
    """A Haar-random single-qubit product state (cheap, well-spread test input)."""
    rng = rng or np.random.default_rng()
    state = np.array([1.0], dtype=complex)
    for _ in range(num_qubits):
        amplitudes = rng.normal(size=2) + 1j * rng.normal(size=2)
        amplitudes /= np.linalg.norm(amplitudes)
        state = np.kron(amplitudes, state)
    return state


def _apply_single(state: np.ndarray, matrix: np.ndarray, qubit: int,
                  num_qubits: int) -> np.ndarray:
    """Apply a 2x2 unitary to ``qubit`` of ``state`` (little-endian)."""
    full = state.reshape([2] * num_qubits)
    # Axis ordering of reshape is big-endian: axis 0 corresponds to the most
    # significant qubit (num_qubits - 1).
    axis = num_qubits - 1 - qubit
    moved = np.moveaxis(full, axis, 0)
    reshaped = moved.reshape(2, -1)
    updated = matrix @ reshaped
    return np.moveaxis(updated.reshape(moved.shape), 0, axis).reshape(-1)


def _apply_two(state: np.ndarray, matrix: np.ndarray, qubits: tuple[int, int],
               num_qubits: int) -> np.ndarray:
    """Apply a 4x4 unitary on ``qubits = (q0, q1)`` where q0 is the low bit."""
    q0, q1 = qubits
    full = state.reshape([2] * num_qubits)
    axis0 = num_qubits - 1 - q0
    axis1 = num_qubits - 1 - q1
    moved = np.moveaxis(full, (axis0, axis1), (0, 1))
    # Index (b0, b1) corresponds to matrix basis index b0 + 2*b1 (little-endian
    # within the gate's own qubit list).
    reshaped = moved.reshape(4, -1)
    # moved index = b0*2 + b1 as flattened with axis0 outermost; build an
    # explicit permutation to the gate's basis ordering.
    perm = np.array([0, 2, 1, 3])  # moved-flat index -> gate basis index
    gate_ordered = reshaped[np.argsort(perm)]
    updated = matrix @ gate_ordered
    back = updated[perm]
    result = back.reshape(moved.shape)
    return np.moveaxis(result, (0, 1), (axis0, axis1)).reshape(-1)


class StatevectorSimulator:
    """Exact pure-state simulator for circuits of up to ~20 qubits."""

    def __init__(self, max_qubits: int = 22):
        self.max_qubits = max_qubits

    def run(self, circuit: Circuit, initial_state: np.ndarray | None = None
            ) -> np.ndarray:
        """Propagate ``initial_state`` (default |0...0>) through the circuit."""
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise ValueError(f"{n} qubits exceeds the simulator limit of "
                             f"{self.max_qubits}")
        state = zero_state(n) if initial_state is None else np.asarray(
            initial_state, dtype=complex)
        if state.shape != (1 << n,):
            raise ValueError("initial state has the wrong dimension")
        for gate in circuit.gates:
            state = self.apply_gate(state, gate, n)
        return state

    @staticmethod
    def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
        """Apply one gate (measurements and barriers are ignored)."""
        if gate.is_measure or gate.is_barrier or gate.name == "reset":
            return state
        matrix = gate_unitary(gate)
        if gate.num_qubits == 1:
            return _apply_single(state, matrix, gate.qubits[0], num_qubits)
        if gate.num_qubits == 2:
            return _apply_two(state, matrix, (gate.qubits[0], gate.qubits[1]),
                              num_qubits)
        raise ValueError(f"cannot apply {gate.num_qubits}-qubit gate {gate.name!r}")

    def probabilities(self, circuit: Circuit) -> np.ndarray:
        """Measurement probabilities of the final state in the computational basis."""
        state = self.run(circuit)
        return np.abs(state) ** 2

    def expectation_z(self, circuit: Circuit, qubit: int) -> float:
        """<Z> on one qubit of the final state."""
        probabilities = self.probabilities(circuit)
        signs = np.where((np.arange(probabilities.size) >> qubit) & 1, -1.0, 1.0)
        return float(np.sum(signs * probabilities))


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """|<a|b>|^2 for two pure states."""
    return float(abs(np.vdot(state_a, state_b)) ** 2)
