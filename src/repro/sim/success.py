"""Estimated success probability (ESP) of a routed, scheduled circuit.

Fig. 9 measures fidelity with a full density-matrix simulation, which caps the
device size at ~10 qubits.  For the larger Fig. 8 architectures a standard
analytic proxy is the *estimated success probability*:

``ESP = Π_gates F(gate) × Π_qubits exp(-T_busy/T1' ) × exp(-T_idle/T2')``

* every gate contributes its calibrated fidelity (single-qubit, two-qubit or
  readout, from :class:`repro.arch.calibration.DeviceCalibration`; an inserted
  SWAP counts as three two-qubit gates), and
* every qubit contributes a decoherence factor for the time it spends idle
  (dephasing, T2) and busy (relaxation, T1) until its last gate finishes.

The metric is monotone in both the gate count and the schedule length, so it
captures the trade-off the paper's Section V-B discusses: CODAR may insert
more SWAPs than SABRE (hurting the gate-fidelity product) but finishes sooner
(helping the decoherence factor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.calibration import DeviceCalibration
from repro.core.circuit import Circuit
from repro.sim.scheduler import Schedule, asap_schedule


@dataclass(frozen=True)
class SuccessEstimate:
    """Breakdown of an ESP computation."""

    gate_fidelity_product: float
    decoherence_factor: float
    readout_factor: float
    num_one_qubit_gates: int
    num_two_qubit_gates: int
    num_measurements: int
    makespan_cycles: float

    @property
    def probability(self) -> float:
        """The combined estimated success probability in ``[0, 1]``."""
        return self.gate_fidelity_product * self.decoherence_factor * self.readout_factor

    def as_row(self) -> dict:
        return {
            "esp": self.probability,
            "gate_product": self.gate_fidelity_product,
            "decoherence": self.decoherence_factor,
            "readout": self.readout_factor,
            "1q_gates": self.num_one_qubit_gates,
            "2q_gates": self.num_two_qubit_gates,
            "makespan": self.makespan_cycles,
        }


def _cycle_time_ns(calibration: DeviceCalibration) -> float:
    """Physical duration of one scheduler cycle, from the calibration column.

    The duration maps express every gate in multiples of the single-qubit gate
    time, so one cycle corresponds to the calibrated single-qubit duration.
    A missing value falls back to 100 ns (a typical superconducting 1q gate).
    """
    return calibration.duration_1q_ns or 100.0


def estimate_success(circuit: Circuit, calibration: DeviceCalibration,
                     durations=None, schedule: Schedule | None = None
                     ) -> SuccessEstimate:
    """Estimate the success probability of ``circuit`` on a calibrated device.

    Parameters
    ----------
    circuit:
        A routed (physical) circuit.  SWAPs are costed as three two-qubit
        gates; barriers are free.
    calibration:
        The Table I column supplying gate fidelities and T1/T2.
    durations:
        Duration map used to schedule the circuit when ``schedule`` is not
        supplied; defaults to the calibration's own
        :meth:`~repro.arch.calibration.DeviceCalibration.duration_map`.
    schedule:
        Pre-computed schedule of exactly this circuit (avoids re-scheduling
        when the caller already has one).
    """
    durations = durations if durations is not None else calibration.duration_map()
    if schedule is None:
        schedule = asap_schedule(circuit, durations)

    fidelity_1q = calibration.fidelity_1q if calibration.fidelity_1q is not None else 1.0
    fidelity_2q = calibration.fidelity_2q if calibration.fidelity_2q is not None else 1.0
    readout = (calibration.readout_fidelity
               if calibration.readout_fidelity is not None else 1.0)

    gate_product = 1.0
    readout_factor = 1.0
    ones = twos = measures = 0
    for gate in circuit.gates:
        if gate.is_barrier or gate.is_directive:
            continue
        if gate.is_measure:
            measures += 1
            readout_factor *= readout
        elif gate.is_swap:
            twos += 3
            gate_product *= fidelity_2q ** 3
        elif gate.num_qubits == 2:
            twos += 1
            gate_product *= fidelity_2q
        elif gate.num_qubits == 1:
            ones += 1
            gate_product *= fidelity_1q

    decoherence = _decoherence_factor(circuit, schedule, calibration)
    return SuccessEstimate(
        gate_fidelity_product=gate_product,
        decoherence_factor=decoherence,
        readout_factor=readout_factor,
        num_one_qubit_gates=ones,
        num_two_qubit_gates=twos,
        num_measurements=measures,
        makespan_cycles=schedule.makespan,
    )


def _decoherence_factor(circuit: Circuit, schedule: Schedule,
                        calibration: DeviceCalibration) -> float:
    """Per-qubit T1/T2 survival probability over the scheduled lifetime.

    A qubit's lifetime runs from time 0 to the finish of its last gate (after
    that it is measured or ignored and further decay does not matter).  Busy
    time decays with T1, idle time with T2; an unknown or infinite time
    constant contributes no decay.
    """
    cycle_ns = _cycle_time_ns(calibration)
    t1 = calibration.t1_ns
    t2 = calibration.t2_ns
    last_finish = [0.0] * max(schedule.num_qubits, 1)
    busy = [0.0] * max(schedule.num_qubits, 1)
    for scheduled in schedule.gates:
        for qubit in scheduled.gate.qubits:
            busy[qubit] += scheduled.duration
            last_finish[qubit] = max(last_finish[qubit], scheduled.finish)

    factor = 1.0
    for qubit in circuit.used_qubits():
        lifetime = last_finish[qubit]
        idle = max(0.0, lifetime - busy[qubit])
        if t1 is not None and not math.isinf(t1) and t1 > 0:
            factor *= math.exp(-(busy[qubit] * cycle_ns) / t1)
        if t2 is not None and not math.isinf(t2) and t2 > 0:
            factor *= math.exp(-(idle * cycle_ns) / t2)
    return factor


def compare_success(results, calibration: DeviceCalibration) -> list[dict]:
    """ESP rows for several routing results (convenience for reports).

    ``results`` is an iterable of :class:`repro.mapping.base.RoutingResult`;
    each row carries the router name so tables can be printed directly.
    """
    rows = []
    for result in results:
        estimate = estimate_success(result.routed, calibration,
                                    durations=result.device.durations)
        row = {"router": result.router_name, "circuit": result.original.name}
        row.update(estimate.as_row())
        rows.append(row)
    return rows
