"""Plain-text visualisation helpers: circuit diagrams and schedule timelines.

No plotting dependency is available offline, so the library ships ASCII
renderers good enough for debugging routing decisions and for the examples'
output: a wire-per-qubit circuit drawing and a Gantt-style timeline of an ASAP
schedule (which makes the weighted-depth argument of the paper visible at a
glance — long CX/SWAP boxes vs short single-qubit boxes).
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.sim.scheduler import Schedule


def draw_circuit(circuit: Circuit, max_columns: int = 120) -> str:
    """Render a circuit as one text wire per qubit.

    Single-qubit gates print their (upper-cased) name on the wire; two-qubit
    gates print ``*`` on the first operand and the name on the second, with
    ``|`` filler on wires in between so the column reads as one vertical
    connection.  The output is truncated at ``max_columns`` characters per
    wire (an ellipsis marks truncation) because routed benchmark circuits can
    be thousands of gates long.
    """
    if circuit.num_qubits == 0:
        return "(empty circuit)"
    wires: list[list[str]] = [[] for _ in range(circuit.num_qubits)]

    def pad_to_same_length() -> None:
        width = max(len(w) for w in wires)
        for wire in wires:
            while len(wire) < width:
                wire.append("-")

    for gate in circuit.gates:
        if gate.is_barrier:
            pad_to_same_length()
            for wire in wires:
                wire.append("‖")
            continue
        label = gate.name.upper()
        if gate.is_measure:
            label = "M"
        if gate.num_qubits == 1:
            wires[gate.qubits[0]].append(label)
            continue
        # Two-qubit gate: align the involved wires to the same column first.
        pad_to_same_length()
        first, second = gate.qubits
        low, high = min(first, second), max(first, second)
        for qubit in range(circuit.num_qubits):
            if qubit == first:
                wires[qubit].append("*")
            elif qubit == second:
                wires[qubit].append(label)
            elif low < qubit < high:
                wires[qubit].append("|")
            else:
                wires[qubit].append("-")
    pad_to_same_length()

    lines = []
    for index, wire in enumerate(wires):
        body = "-".join(cell.center(3, "-") for cell in wire)
        if len(body) > max_columns:
            body = body[: max_columns - 3] + "..."
        lines.append(f"q{index:<3d}: {body}")
    return "\n".join(lines)


def draw_schedule(schedule: Schedule, cycles_per_char: float = 1.0,
                  max_columns: int = 120) -> str:
    """Render an ASAP schedule as a Gantt-style timeline, one row per qubit.

    Each gate occupies ``duration / cycles_per_char`` characters filled with
    the first letter of its name; idle time is ``.``.  The footer shows the
    makespan, which is exactly the weighted depth the paper reports.
    """
    if not schedule.gates:
        return "(empty schedule)"
    width = int(schedule.makespan / cycles_per_char) + 1
    rows = [["."] * min(width, max_columns) for _ in range(schedule.num_qubits)]
    truncated = width > max_columns
    for scheduled in schedule.gates:
        gate = scheduled.gate
        if gate.is_barrier or not gate.qubits:
            continue
        start = int(scheduled.start / cycles_per_char)
        finish = max(start + 1, int(scheduled.finish / cycles_per_char))
        symbol = gate.name[0].upper()
        for qubit in gate.qubits:
            for column in range(start, min(finish, max_columns)):
                rows[qubit][column] = symbol
    lines = [f"q{index:<3d}: {''.join(row)}" for index, row in enumerate(rows)]
    footer = f"makespan = {schedule.makespan} cycles"
    if truncated:
        footer += f" (timeline truncated to {max_columns} characters)"
    lines.append(footer)
    return "\n".join(lines)
