"""Benchmark workloads.

The paper evaluates on 71 OpenQASM benchmarks collected from IBM Qiskit's
repository, RevLib, ScaffCC and Quipper (3–36 qubits, up to ~30k gates).
Those exact files are not redistributable here, so :mod:`repro.workloads`
generates an equivalent suite programmatically:

* :mod:`repro.workloads.generators` — parametric circuit families (QFT,
  Bernstein–Vazirani, GHZ, Grover, ripple-carry adders, QAOA, Deutsch–Jozsa,
  Simon, Toffoli chains, random CX-dominated circuits, supremacy-style random
  lattice circuits),
* :mod:`repro.workloads.reversible` — RevLib-style reversible arithmetic
  (controlled increments, modular adders, hidden-weighted-bit style networks),
* :mod:`repro.workloads.algorithms` — extended families used by the extension
  studies (phase estimation, W states, quantum-volume circuits, VQE ansätze,
  hidden shift, Draper QFT adders),
* :mod:`repro.workloads.qasm_corpus` — a small corpus of real OpenQASM 2.0
  source texts exercising the full parser path,
* :mod:`repro.workloads.suite` — the named 71-entry suite registry whose size
  distribution mirrors the paper's, plus the 7 "famous algorithm" circuits of
  the fidelity experiment.
"""

from repro.workloads.generators import (
    qft,
    ghz,
    bernstein_vazirani,
    deutsch_jozsa,
    grover,
    simon,
    qaoa_maxcut,
    ripple_carry_adder,
    toffoli_chain,
    random_circuit,
    supremacy_style,
)
from repro.workloads.algorithms import (
    extended_workloads,
    hidden_shift,
    qft_adder,
    quantum_phase_estimation,
    quantum_volume,
    vqe_ansatz,
    w_state,
)
from repro.workloads.reversible import (
    controlled_increment,
    modular_adder,
    hidden_weighted_bit,
    swap_test_network,
)
from repro.workloads.qasm_corpus import corpus_names, load_all as load_qasm_corpus
from repro.workloads.suite import (
    BenchmarkCase,
    benchmark_suite,
    famous_algorithms,
    get_benchmark,
)

__all__ = [
    "qft",
    "ghz",
    "bernstein_vazirani",
    "deutsch_jozsa",
    "grover",
    "simon",
    "qaoa_maxcut",
    "ripple_carry_adder",
    "toffoli_chain",
    "random_circuit",
    "supremacy_style",
    "extended_workloads",
    "hidden_shift",
    "qft_adder",
    "quantum_phase_estimation",
    "quantum_volume",
    "vqe_ansatz",
    "w_state",
    "controlled_increment",
    "modular_adder",
    "hidden_weighted_bit",
    "swap_test_network",
    "BenchmarkCase",
    "benchmark_suite",
    "corpus_names",
    "famous_algorithms",
    "get_benchmark",
    "load_qasm_corpus",
]
