"""Additional algorithm workloads beyond the core paper suite.

The 71-entry suite in :mod:`repro.workloads.suite` mirrors the paper's
benchmark collection; this module adds the algorithm families commonly used
by follow-up qubit-mapping studies (phase estimation, W states, quantum-volume
model circuits, variational ansätze, hidden-shift) so the extended experiments
— duration sensitivity, noise-aware routing, scaling — have a broader and
structurally different workload pool to draw from.

Every generator is deterministic given its arguments and returns a logical
:class:`~repro.core.circuit.Circuit`, exactly like
:mod:`repro.workloads.generators`.
"""

from __future__ import annotations

import math
import random

from repro.core.circuit import Circuit
from repro.workloads.generators import qft


def quantum_phase_estimation(counting_qubits: int, name: str | None = None) -> Circuit:
    """Quantum phase estimation of a ``u1`` phase on one target qubit.

    ``counting_qubits`` qubits form the counting register; qubit
    ``counting_qubits`` is the eigenstate target.  The circuit applies the
    controlled powers of ``U = u1(2π·θ)`` with ``θ = 1/3`` followed by the
    inverse QFT on the counting register — the canonical structure (long-range
    controlled gates fanning into one target) that stresses routers very
    differently from nearest-neighbour workloads.

    The estimate is read **big-endian**: counting qubit 0 is the most
    significant bit of ``round(θ · 2^m)`` (the convention induced by the
    swap-free QFT of :func:`repro.workloads.generators.qft`).
    """
    if counting_qubits < 1:
        raise ValueError("QPE needs at least one counting qubit")
    total = counting_qubits + 1
    target = counting_qubits
    theta = 1.0 / 3.0
    circ = Circuit(total, name=name or f"qpe_{total}")
    circ.x(target)  # prepare the |1> eigenstate of u1
    for q in range(counting_qubits):
        circ.h(q)
    for q in range(counting_qubits):
        power = 1 << q
        circ.cu1(2.0 * math.pi * theta * power, q, target)
    # Exact inverse of the swap-free QFT on the counting register: under that
    # convention counting qubit q carries phase 2π·x̃/2^(m-q), which is exactly
    # what the controlled powers above produce for x̃ = θ·2^m.
    inverse_qft = qft(counting_qubits, with_swaps=False).inverse()
    for gate in inverse_qft.gates:
        circ.append(gate)
    return circ


def w_state(num_qubits: int, name: str | None = None) -> Circuit:
    """W-state preparation via the cascade of controlled rotations.

    The standard construction: a chain of ``cry``-like blocks distributing a
    single excitation across the register, ending with a CNOT ladder.  Every
    pair of consecutive qubits interacts, so the circuit is easy on a line but
    exposes duration effects (long CRY blocks next to short X gates).
    """
    if num_qubits < 2:
        raise ValueError("a W state needs at least 2 qubits")
    circ = Circuit(num_qubits, name=name or f"wstate_{num_qubits}")
    circ.x(0)
    for k in range(1, num_qubits):
        # Before step k, qubit k-1 holds the excitation destined for qubits
        # k-1..n-1; it must keep a 1/(remaining+1) share and pass on the rest.
        remaining = num_qubits - k
        theta = 2.0 * math.acos(math.sqrt(1.0 / (remaining + 1.0)))
        # controlled-RY(theta) from qubit k-1 onto k, then CX back.
        circ.ry(theta / 2.0, k)
        circ.cx(k - 1, k)
        circ.ry(-theta / 2.0, k)
        circ.cx(k - 1, k)
        circ.cx(k, k - 1)
    return circ


def quantum_volume(num_qubits: int, depth: int | None = None, seed: int = 3,
                   name: str | None = None) -> Circuit:
    """Quantum-volume model circuit: layers of random SU(4) blocks on random pairs.

    Each layer permutes the qubits and applies a two-qubit block (decomposed
    into 3 CX + single-qubit rotations, the standard KAK gate count) to each
    disjoint pair.  ``depth`` defaults to ``num_qubits`` as in the IBM QV
    definition.  These circuits maximise routing pressure because the pairing
    is re-randomised every layer.
    """
    if num_qubits < 2:
        raise ValueError("quantum volume needs at least 2 qubits")
    depth = depth if depth is not None else num_qubits
    rng = random.Random(seed)
    circ = Circuit(num_qubits, name=name or f"qv_{num_qubits}_{depth}")
    for _ in range(depth):
        order = list(range(num_qubits))
        rng.shuffle(order)
        for i in range(0, num_qubits - 1, 2):
            _su4_block(circ, order[i], order[i + 1], rng)
    return circ


def _su4_block(circ: Circuit, a: int, b: int, rng: random.Random) -> None:
    """A Haar-ish SU(4) block in the standard 3-CX KAK template."""
    def random_u3(q: int) -> None:
        circ.u3(rng.uniform(0, math.pi), rng.uniform(0, 2 * math.pi),
                rng.uniform(0, 2 * math.pi), q)

    random_u3(a)
    random_u3(b)
    circ.cx(a, b)
    circ.rz(rng.uniform(0, 2 * math.pi), b)
    circ.ry(rng.uniform(0, math.pi), a)
    circ.cx(b, a)
    circ.ry(rng.uniform(0, math.pi), a)
    circ.cx(a, b)
    random_u3(a)
    random_u3(b)


def vqe_ansatz(num_qubits: int, layers: int = 2, entangler: str = "linear",
               seed: int = 5, name: str | None = None) -> Circuit:
    """Hardware-efficient VQE ansatz: RY/RZ layers + CX entangler blocks.

    ``entangler`` is ``"linear"`` (chain of CX, NISQ-friendly) or ``"full"``
    (all-to-all CX, the routing-hostile variant used to stress mappers).
    """
    if num_qubits < 2:
        raise ValueError("the ansatz needs at least 2 qubits")
    if entangler not in ("linear", "full"):
        raise ValueError("entangler must be 'linear' or 'full'")
    rng = random.Random(seed)
    circ = Circuit(num_qubits, name=name or f"vqe_{num_qubits}_{entangler}_l{layers}")
    for _ in range(layers):
        for q in range(num_qubits):
            circ.ry(rng.uniform(0, math.pi), q)
            circ.rz(rng.uniform(0, 2 * math.pi), q)
        if entangler == "linear":
            for q in range(num_qubits - 1):
                circ.cx(q, q + 1)
        else:
            for a in range(num_qubits):
                for b in range(a + 1, num_qubits):
                    circ.cx(a, b)
    for q in range(num_qubits):
        circ.ry(rng.uniform(0, math.pi), q)
    return circ


def hidden_shift(num_qubits: int, shift: int | None = None,
                 name: str | None = None) -> Circuit:
    """Hidden-shift circuit for a bent (Maiorana–McFarland) function.

    ``num_qubits`` must be even.  The circuit is Clifford + T dominated
    (H layers, CZ oracle, X shift), which mirrors the RevLib-style reversible
    workloads while keeping a regular structure.
    """
    if num_qubits < 2 or num_qubits % 2:
        raise ValueError("hidden shift needs an even number of qubits >= 2")
    if shift is None:
        shift = (1 << num_qubits) - 1
    half = num_qubits // 2
    circ = Circuit(num_qubits, name=name or f"hidden_shift_{num_qubits}")

    def oracle() -> None:
        for q in range(half):
            circ.cz(q, half + q)

    for q in range(num_qubits):
        circ.h(q)
    for q in range(num_qubits):
        if (shift >> q) & 1:
            circ.x(q)
    oracle()
    for q in range(num_qubits):
        if (shift >> q) & 1:
            circ.x(q)
    for q in range(num_qubits):
        circ.h(q)
    oracle()
    for q in range(num_qubits):
        circ.h(q)
    return circ


def qft_adder(num_bits: int, addend: int = 1, name: str | None = None) -> Circuit:
    """Draper QFT adder: add the classical constant ``addend`` to a register.

    QFT → phase rotations → inverse QFT; a structured, phase-gate-heavy
    workload with the long-range interaction pattern of the QFT but twice the
    depth.

    The register is read **big-endian** (qubit 0 is the most significant bit),
    the convention induced by the swap-free QFT: under it, qubit ``q`` carries
    the Fourier phase ``2π·x/2^(n-q)``, so adding the constant is the product
    of single-qubit ``u1`` rotations below.  Addition is modulo ``2^n``.
    """
    if num_bits < 1:
        raise ValueError("the adder needs at least one bit")
    circ = Circuit(num_bits, name=name or f"qft_adder_{num_bits}")
    forward = qft(num_bits, with_swaps=False)
    for gate in forward.gates:
        circ.append(gate)
    for q in range(num_bits):
        modulus = 1 << (num_bits - q)
        angle = 2.0 * math.pi * (addend % modulus) / modulus
        if angle:
            circ.u1(angle, q)
    for gate in forward.inverse().gates:
        circ.append(gate)
    return circ


#: Registry of the extended algorithm families, keyed by a short name; each
#: value is ``(builder, default kwargs)``.  Used by the extended experiments
#: and by :func:`extended_workloads`.
EXTENDED_FAMILIES = {
    "qpe": (quantum_phase_estimation, {"counting_qubits": 5}),
    "w_state": (w_state, {"num_qubits": 8}),
    "quantum_volume": (quantum_volume, {"num_qubits": 8}),
    "vqe_linear": (vqe_ansatz, {"num_qubits": 8, "entangler": "linear"}),
    "vqe_full": (vqe_ansatz, {"num_qubits": 6, "entangler": "full"}),
    "hidden_shift": (hidden_shift, {"num_qubits": 10}),
    "qft_adder": (qft_adder, {"num_bits": 6}),
}


def extended_workloads(max_qubits: int | None = None) -> list[Circuit]:
    """Build one representative circuit per extended family."""
    circuits = []
    for builder, kwargs in EXTENDED_FAMILIES.values():
        circuit = builder(**kwargs)
        if max_qubits is not None and circuit.num_qubits > max_qubits:
            continue
        circuits.append(circuit)
    return circuits
