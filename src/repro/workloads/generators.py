"""Parametric quantum-circuit families used as benchmark workloads.

Every generator returns a plain :class:`~repro.core.circuit.Circuit` on
logical qubits; routing is the caller's job.  The families are the ones the
paper's benchmark collection draws from (QFT and other textbook algorithms as
compiled by ScaffCC / Qiskit, plus randomised circuits spanning the same size
range).  All generators are deterministic given their arguments (random
families take an explicit ``seed``).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.core.circuit import Circuit


# --------------------------------------------------------------------------- #
# Textbook algorithms
# --------------------------------------------------------------------------- #
def qft(num_qubits: int, with_swaps: bool = True, name: str | None = None) -> Circuit:
    """Quantum Fourier Transform on ``num_qubits`` qubits.

    The standard H + controlled-phase ladder; the optional final SWAP network
    reverses the qubit order (ScaffCC emits it, and it stresses the router).
    """
    circ = Circuit(num_qubits, name=name or f"qft_{num_qubits}")
    for target in range(num_qubits):
        circ.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=2):
            circ.cu1(2.0 * math.pi / (1 << offset), control, target)
    if with_swaps:
        for q in range(num_qubits // 2):
            circ.swap(q, num_qubits - 1 - q)
    return circ


def ghz(num_qubits: int, name: str | None = None) -> Circuit:
    """GHZ state preparation: H on qubit 0 followed by a CNOT chain."""
    circ = Circuit(num_qubits, name=name or f"ghz_{num_qubits}")
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def bernstein_vazirani(num_qubits: int, secret: int | None = None,
                       name: str | None = None) -> Circuit:
    """Bernstein–Vazirani with a hidden bit-string ``secret`` on ``num_qubits - 1`` data qubits."""
    if num_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least 2 qubits")
    data = num_qubits - 1
    if secret is None:
        secret = (1 << data) - 1  # all-ones string: densest oracle
    circ = Circuit(num_qubits, name=name or f"bv_{num_qubits}")
    ancilla = num_qubits - 1
    circ.x(ancilla)
    for q in range(data):
        circ.h(q)
    circ.h(ancilla)
    for q in range(data):
        if (secret >> q) & 1:
            circ.cx(q, ancilla)
    for q in range(data):
        circ.h(q)
    return circ


def deutsch_jozsa(num_qubits: int, balanced: bool = True,
                  name: str | None = None) -> Circuit:
    """Deutsch–Jozsa with a balanced (CNOT-fan-in) or constant oracle."""
    if num_qubits < 2:
        raise ValueError("Deutsch-Jozsa needs at least 2 qubits")
    circ = Circuit(num_qubits, name=name or f"dj_{num_qubits}")
    ancilla = num_qubits - 1
    circ.x(ancilla)
    for q in range(num_qubits):
        circ.h(q)
    if balanced:
        for q in range(num_qubits - 1):
            circ.cx(q, ancilla)
    else:
        circ.z(ancilla)
    for q in range(num_qubits - 1):
        circ.h(q)
    return circ


def grover(num_qubits: int, iterations: int | None = None, marked: int = 0,
           name: str | None = None) -> Circuit:
    """Grover search over ``num_qubits`` data qubits with a phase oracle.

    The multi-controlled Z of the oracle and the diffuser are decomposed into
    Toffoli ladders using ``num_qubits - 2`` borrowed ancillae when available,
    otherwise the textbook recursive decomposition via ``ccx``.
    """
    if num_qubits < 2:
        raise ValueError("Grover needs at least 2 qubits")
    if iterations is None:
        iterations = max(1, int(round(math.pi / 4.0 * math.sqrt(1 << num_qubits) / 2)))
    circ = Circuit(num_qubits, name=name or f"grover_{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
    for _ in range(iterations):
        _phase_flip(circ, list(range(num_qubits)), marked)
        for q in range(num_qubits):
            circ.h(q)
            circ.x(q)
        _controlled_z_all(circ, list(range(num_qubits)))
        for q in range(num_qubits):
            circ.x(q)
            circ.h(q)
    return circ


def _phase_flip(circ: Circuit, qubits: Sequence[int], marked: int) -> None:
    """Flip the phase of the computational-basis state ``marked``."""
    for position, q in enumerate(qubits):
        if not (marked >> position) & 1:
            circ.x(q)
    _controlled_z_all(circ, qubits)
    for position, q in enumerate(qubits):
        if not (marked >> position) & 1:
            circ.x(q)


def _controlled_z_all(circ: Circuit, qubits: Sequence[int]) -> None:
    """Multi-controlled Z on all ``qubits`` via a CCX ladder."""
    if len(qubits) == 1:
        circ.z(qubits[0])
        return
    if len(qubits) == 2:
        circ.cz(qubits[0], qubits[1])
        return
    target = qubits[-1]
    circ.h(target)
    _multi_controlled_x(circ, qubits[:-1], target)
    circ.h(target)


def _controlled_root_x(circ: Circuit, control: int, target: int, root: int,
                       dagger: bool = False) -> None:
    """Controlled ``X**(1/root)`` built from a control phase plus a CRX.

    ``X**(1/m) = exp(i*pi/(2m)) * Rx(pi/m)``; when controlled, the global phase
    becomes a ``u1(pi/(2m))`` on the control qubit.
    """
    sign = -1.0 if dagger else 1.0
    circ.u1(sign * math.pi / (2.0 * root), control)
    circ.add("crx", [control, target], [sign * math.pi / root])


def _multi_controlled_x(circ: Circuit, controls: Sequence[int], target: int,
                        root: int = 1) -> None:
    """Exact multi-controlled ``X**(1/root)`` via the Barenco recursion.

    No ancilla is used; the construction is exponential in the number of
    controls, which matches the gate blow-up real compilers exhibit on these
    oracles and provides realistic routing pressure.
    """
    controls = list(controls)
    if len(controls) == 1:
        if root == 1:
            circ.cx(controls[0], target)
        else:
            _controlled_root_x(circ, controls[0], target, root)
        return
    if len(controls) == 2 and root == 1:
        circ.ccx(controls[0], controls[1], target)
        return
    last = controls[-1]
    rest = controls[:-1]
    _controlled_root_x(circ, last, target, 2 * root)
    _multi_controlled_x(circ, rest, last, 1)
    _controlled_root_x(circ, last, target, 2 * root, dagger=True)
    _multi_controlled_x(circ, rest, last, 1)
    _multi_controlled_x(circ, rest, target, 2 * root)


def simon(num_qubits: int, name: str | None = None) -> Circuit:
    """Simon's algorithm instance with a two-register layout.

    ``num_qubits`` must be even: the first half is the input register, the
    second half the output register; the oracle implements ``f(x) = x XOR s``
    copying with a hidden period ``s = 10...0``.
    """
    if num_qubits < 4 or num_qubits % 2:
        raise ValueError("Simon needs an even number of qubits >= 4")
    half = num_qubits // 2
    circ = Circuit(num_qubits, name=name or f"simon_{num_qubits}")
    for q in range(half):
        circ.h(q)
    # copy oracle
    for q in range(half):
        circ.cx(q, half + q)
    # fold the hidden period into the output register
    for q in range(1, half):
        circ.cx(0, half + q)
    for q in range(half):
        circ.h(q)
    return circ


def qaoa_maxcut(num_qubits: int, layers: int = 1, seed: int = 7,
                edge_probability: float = 0.5, name: str | None = None) -> Circuit:
    """QAOA MaxCut ansatz on a random Erdős–Rényi graph."""
    rng = random.Random(seed)
    edges = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
             if rng.random() < edge_probability]
    if not edges:
        edges = [(a, a + 1) for a in range(num_qubits - 1)]
    circ = Circuit(num_qubits, name=name or f"qaoa_{num_qubits}_p{layers}")
    for q in range(num_qubits):
        circ.h(q)
    for layer in range(layers):
        gamma = 0.4 + 0.1 * layer
        beta = 0.7 - 0.1 * layer
        for a, b in edges:
            circ.cx(a, b)
            circ.rz(2.0 * gamma, b)
            circ.cx(a, b)
        for q in range(num_qubits):
            circ.rx(2.0 * beta, q)
    return circ


def ripple_carry_adder(num_bits: int, name: str | None = None) -> Circuit:
    """Cuccaro ripple-carry adder on ``2 * num_bits + 2`` qubits.

    Register layout: carry-in, a[0..n-1], b[0..n-1], carry-out.  This is the
    adder family (rc_adder_*) that appears in the SABRE benchmark set.
    """
    if num_bits < 1:
        raise ValueError("the adder needs at least one bit")
    n = num_bits
    total = 2 * n + 2
    circ = Circuit(total, name=name or f"rc_adder_{total}")
    carry_in = 0
    a = [1 + i for i in range(n)]
    b = [1 + n + i for i in range(n)]
    carry_out = total - 1

    def maj(x: int, y: int, z: int) -> None:
        circ.cx(z, y)
        circ.cx(z, x)
        circ.ccx(x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        circ.ccx(x, y, z)
        circ.cx(z, x)
        circ.cx(x, y)

    maj(carry_in, b[0], a[0])
    for i in range(1, n):
        maj(a[i - 1], b[i], a[i])
    circ.cx(a[n - 1], carry_out)
    for i in reversed(range(1, n)):
        uma(a[i - 1], b[i], a[i])
    uma(carry_in, b[0], a[0])
    return circ


def toffoli_chain(num_qubits: int, repetitions: int = 1,
                  name: str | None = None) -> Circuit:
    """A chain of decomposed Toffolis sweeping across the register."""
    if num_qubits < 3:
        raise ValueError("a Toffoli chain needs at least 3 qubits")
    circ = Circuit(num_qubits, name=name or f"tof_chain_{num_qubits}")
    for _ in range(repetitions):
        for q in range(num_qubits - 2):
            circ.ccx(q, q + 1, q + 2)
    return circ


# --------------------------------------------------------------------------- #
# Randomised families
# --------------------------------------------------------------------------- #
_ONE_QUBIT_POOL = ("h", "x", "t", "tdg", "s", "rz")


def random_circuit(num_qubits: int, num_gates: int, seed: int,
                   two_qubit_fraction: float = 0.4,
                   name: str | None = None) -> Circuit:
    """A random circuit with a controlled fraction of CNOTs.

    The interaction pattern is drawn uniformly over qubit pairs, which is the
    hardest case for a router (no locality to exploit); the paper's RevLib
    imports behave similarly.
    """
    if num_qubits < 2:
        raise ValueError("random circuits need at least 2 qubits")
    rng = random.Random(seed)
    circ = Circuit(num_qubits, name=name or f"random_{num_qubits}_{num_gates}")
    for _ in range(num_gates):
        if rng.random() < two_qubit_fraction:
            a, b = rng.sample(range(num_qubits), 2)
            circ.cx(a, b)
        else:
            gate = rng.choice(_ONE_QUBIT_POOL)
            q = rng.randrange(num_qubits)
            if gate == "rz":
                circ.rz(rng.uniform(0, 2 * math.pi), q)
            else:
                circ.add(gate, [q])
    return circ


def supremacy_style(rows: int, cols: int, cycles: int, seed: int = 11,
                    name: str | None = None) -> Circuit:
    """Random-circuit-sampling style workload on a ``rows x cols`` logical grid.

    Each cycle applies a random single-qubit gate to every qubit followed by a
    pattern of CZ gates between grid neighbours (alternating orientation),
    mimicking the structure of the Sycamore supremacy circuits.
    """
    num_qubits = rows * cols
    rng = random.Random(seed)
    circ = Circuit(num_qubits, name=name or f"supremacy_{rows}x{cols}_{cycles}")

    def index(r: int, c: int) -> int:
        return r * cols + c

    for cycle in range(cycles):
        for q in range(num_qubits):
            circ.add(rng.choice(("sx", "t", "h")), [q])
        horizontal = cycle % 2 == 0
        offset = (cycle // 2) % 2
        for r in range(rows):
            for c in range(cols):
                if horizontal and c + 1 < cols and c % 2 == offset:
                    circ.cz(index(r, c), index(r, c + 1))
                if not horizontal and r + 1 < rows and r % 2 == offset:
                    circ.cz(index(r, c), index(r + 1, c))
    return circ
