"""A small corpus of OpenQASM 2.0 source programs.

The paper's 71 benchmarks are distributed as OpenQASM files (Qiskit examples,
RevLib exports, ScaffCC/Quipper compilations).  The generated suite in
:mod:`repro.workloads.suite` reproduces their *structure*; this module keeps a
handful of real OpenQASM *texts* so that the full text path — lexer, parser,
gate-definition inlining, register flattening — is exercised by the same kind
of input the original toolchain consumed.  The programs are small, hand-written
in the style of the respective sources (custom ``gate`` definitions,
multi-register declarations, register-wide operations, include directives).

Use :func:`corpus_names` / :func:`load` to get parsed circuits, or
:data:`CORPUS` for the raw text (e.g. to write fixture files).
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.qasm.parser import parse_qasm

#: name -> OpenQASM 2.0 source text.
CORPUS: dict[str, str] = {
    # Qiskit-tutorial style: Bell pair with explicit includes and measurement.
    "bell_measure": """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
""",
    # ScaffCC style: a 4-qubit QFT with explicit controlled-phase ladder.
    "qft4_scaffcc": """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
cu1(pi/8) q[3],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
cu1(pi/4) q[3],q[1];
h q[2];
cu1(pi/2) q[3],q[2];
h q[3];
swap q[0],q[3];
swap q[1],q[2];
""",
    # RevLib style: a reversible majority/adder cell using custom gate defs.
    "revlib_majority": """
OPENQASM 2.0;
include "qelib1.inc";
gate maj a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate uma a,b,c
{
  ccx a,b,c;
  cx c,a;
  cx a,b;
}
qreg cin[1];
qreg a[2];
qreg b[2];
qreg cout[1];
creg ans[3];
x a[0];
x b[0];
x b[1];
maj cin[0],b[0],a[0];
maj a[0],b[1],a[1];
cx a[1],cout[0];
uma a[0],b[1],a[1];
uma cin[0],b[0],a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure cout[0] -> ans[2];
""",
    # Qiskit-examples style: 3-qubit Grover iteration with register-wide ops.
    "grover3_qiskit": """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q;
x q[0];
h q[2];
ccx q[0],q[1],q[2];
h q[2];
x q[0];
h q;
x q;
h q[2];
ccx q[0],q[1],q[2];
h q[2];
x q;
h q;
measure q -> c;
""",
    # Quipper-export style: teleportation with three registers and barriers.
    "teleport_quipper": """
OPENQASM 2.0;
include "qelib1.inc";
qreg alice[1];
qreg channel[1];
qreg bob[1];
creg m[2];
u3(0.3,0.2,0.1) alice[0];
h channel[0];
cx channel[0],bob[0];
barrier alice[0],channel[0],bob[0];
cx alice[0],channel[0];
h alice[0];
barrier alice[0],channel[0],bob[0];
cx channel[0],bob[0];
cz alice[0],bob[0];
measure alice[0] -> m[0];
measure channel[0] -> m[1];
""",
    # SABRE-artifact style: a dense 6-qubit random-ish layer program.
    "sabre_mix6": """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
h q[0];
t q[1];
cx q[0],q[5];
cx q[1],q[4];
rz(0.37) q[2];
cx q[2],q[3];
tdg q[5];
cx q[4],q[0];
s q[3];
cx q[5],q[2];
cx q[3],q[1];
h q[4];
cx q[0],q[3];
cx q[5],q[4];
measure q -> c;
""",
}


def corpus_names() -> list[str]:
    """Names of the corpus programs, sorted."""
    return sorted(CORPUS)


def load(name: str) -> Circuit:
    """Parse one corpus program into a flat :class:`Circuit`."""
    if name not in CORPUS:
        raise KeyError(f"unknown corpus program {name!r}; known: {corpus_names()}")
    circuit = parse_qasm(CORPUS[name])
    circuit.name = name
    return circuit


def load_all() -> list[Circuit]:
    """Parse the whole corpus (used by integration tests and examples)."""
    return [load(name) for name in corpus_names()]
