"""RevLib-style reversible-logic workloads.

The RevLib portion of the paper's benchmark collection consists of reversible
arithmetic and boolean-function circuits (adders, mod-adders, hidden weighted
bit, graycode...).  The generators here produce the same *kind* of circuits —
CX/CCX-dominated reversible networks with long dependency chains and wide
fan-in — programmatically, so the routed-gate pressure matches the originals
without redistributing RevLib files.
"""

from __future__ import annotations

import random

from repro.core.circuit import Circuit


def controlled_increment(num_qubits: int, repetitions: int = 1,
                         name: str | None = None) -> Circuit:
    """A controlled ripple increment register (CNOT/CCX staircase).

    Mirrors RevLib counters such as ``0410184`` / ``graycode``: each pass adds
    one to the register conditioned on the previous bits.
    """
    if num_qubits < 2:
        raise ValueError("the increment needs at least 2 qubits")
    circ = Circuit(num_qubits, name=name or f"inc_{num_qubits}")
    for _ in range(repetitions):
        for high in reversed(range(1, num_qubits)):
            if high == 1:
                circ.cx(0, 1)
            else:
                # Flip bit `high` when all lower bits are 1 (carry propagation),
                # approximated with a CCX on the two highest carry bits which
                # is what the RevLib ESOP synthesis emits per stage.
                circ.ccx(high - 2, high - 1, high)
        circ.x(0)
    return circ


def modular_adder(num_bits: int, name: str | None = None) -> Circuit:
    """A modular adder built from two ripple passes plus correction CNOTs.

    Register layout mirrors the RevLib/SABRE ``mod5adder``-style benchmarks:
    ``2 * num_bits + 1`` qubits (two operands plus one carry/scratch qubit).
    """
    if num_bits < 1:
        raise ValueError("the modular adder needs at least one bit")
    n = num_bits
    total = 2 * n + 1
    circ = Circuit(total, name=name or f"mod_adder_{total}")
    a = list(range(n))
    b = list(range(n, 2 * n))
    scratch = total - 1
    # forward ripple
    for i in range(n):
        circ.cx(a[i], b[i])
        if i + 1 < n:
            circ.ccx(a[i], b[i], b[i + 1])
        else:
            circ.ccx(a[i], b[i], scratch)
    # modular correction (subtract the modulus when the scratch carry is set)
    for i in reversed(range(n)):
        circ.cx(scratch, b[i])
    # backward ripple to restore the operand register
    for i in reversed(range(n)):
        if i + 1 < n:
            circ.ccx(a[i], b[i], b[i + 1])
        circ.cx(a[i], b[i])
    return circ


def hidden_weighted_bit(num_qubits: int, name: str | None = None) -> Circuit:
    """A hidden-weighted-bit style permutation network (hwb4/hwb5/hwb6 analogue).

    The RevLib hwb benchmarks are dense permutations synthesised into long
    CCX/CX cascades; this generator builds a deterministic cascade with the
    same all-to-all interaction profile and comparable gate count growth.
    """
    if num_qubits < 3:
        raise ValueError("hidden-weighted-bit needs at least 3 qubits")
    circ = Circuit(num_qubits, name=name or f"hwb_{num_qubits}")
    for shift in range(1, num_qubits):
        for q in range(num_qubits):
            other = (q + shift) % num_qubits
            third = (q + 2 * shift) % num_qubits
            if third not in (q, other):
                circ.ccx(q, other, third)
            circ.cx(q, other)
    return circ


def swap_test_network(num_qubits: int, name: str | None = None) -> Circuit:
    """A controlled-SWAP (Fredkin) comparison network.

    Qubit 0 is the ancilla; the two halves of the remaining register are
    compared pairwise — the classic swap-test / quantum fingerprinting layout
    used by several Quipper-compiled benchmarks.
    """
    if num_qubits < 3 or num_qubits % 2 == 0:
        raise ValueError("the swap test needs an odd number of qubits >= 3")
    half = (num_qubits - 1) // 2
    circ = Circuit(num_qubits, name=name or f"swaptest_{num_qubits}")
    circ.h(0)
    for i in range(half):
        a = 1 + i
        b = 1 + half + i
        # Fredkin gate decomposed as CX + CCX + CX.
        circ.cx(b, a)
        circ.ccx(0, a, b)
        circ.cx(b, a)
    circ.h(0)
    return circ


def random_reversible(num_qubits: int, num_stages: int, seed: int,
                      name: str | None = None) -> Circuit:
    """A random CX/CCX/X reversible cascade (ESOP-synthesis lookalike)."""
    if num_qubits < 3:
        raise ValueError("random reversible circuits need at least 3 qubits")
    rng = random.Random(seed)
    circ = Circuit(num_qubits, name=name or f"rev_rand_{num_qubits}_{num_stages}")
    for _ in range(num_stages):
        kind = rng.random()
        if kind < 0.2:
            circ.x(rng.randrange(num_qubits))
        elif kind < 0.6:
            a, b = rng.sample(range(num_qubits), 2)
            circ.cx(a, b)
        else:
            a, b, c = rng.sample(range(num_qubits), 3)
            circ.ccx(a, b, c)
    return circ
