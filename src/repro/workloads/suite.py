"""The benchmark suite: 71 named circuits mirroring the paper's collection.

The original evaluation gathers 71 OpenQASM programs from IBM Qiskit's
repository, RevLib, ScaffCC/Quipper compilations and the SABRE artifact,
spanning 3 to 36 qubits.  This registry reproduces the *shape* of that
collection with programmatically generated circuits (see DESIGN.md for the
substitution rationale): the same size range, the same mix of structured
algorithms (QFT, BV, Grover, adders), reversible arithmetic and random
circuits, and the same three 36-qubit outliers that only fit the 54-qubit
Sycamore device.

Every entry is lazy: the circuit is only built when requested, and results are
cached because several experiments sweep the whole suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Sequence

from repro.core.circuit import Circuit
from repro.workloads import generators as gen
from repro.workloads import reversible as rev


@dataclass(frozen=True)
class BenchmarkCase:
    """One suite entry: a named circuit factory plus its metadata."""

    name: str
    family: str
    num_qubits: int
    builder: Callable[[], Circuit]
    origin: str = ""

    def build(self) -> Circuit:
        """Construct (or fetch the cached) circuit, renamed to the entry name."""
        circuit = _cached_build(self.name)
        return circuit

    def fits(self, device_qubits: int) -> bool:
        return self.num_qubits <= device_qubits


_REGISTRY: dict[str, BenchmarkCase] = {}


def _register(name: str, family: str, num_qubits: int, origin: str,
              builder: Callable[[], Circuit]) -> None:
    if name in _REGISTRY:
        raise ValueError(f"duplicate benchmark name {name!r}")
    _REGISTRY[name] = BenchmarkCase(name=name, family=family,
                                    num_qubits=num_qubits, builder=builder,
                                    origin=origin)


@lru_cache(maxsize=None)
def _cached_build(name: str) -> Circuit:
    case = _REGISTRY[name]
    circuit = case.builder()
    circuit.name = name
    return circuit


def _populate() -> None:
    # --- textbook algorithms (ScaffCC / Qiskit style) -----------------------
    for n in (3, 4, 5, 8, 10, 16):
        _register(f"ghz_{n}", "ghz", n, "qiskit", lambda n=n: gen.ghz(n))
    for n in (3, 4, 5, 8, 10, 16):
        _register(f"qft_{n}", "qft", n, "scaffcc", lambda n=n: gen.qft(n))
    for n in (3, 5, 7, 9, 11, 16):
        _register(f"bv_{n}", "bernstein_vazirani", n, "qiskit",
                  lambda n=n: gen.bernstein_vazirani(n))
    for n in (4, 6, 8, 10, 12):
        _register(f"dj_{n}", "deutsch_jozsa", n, "qiskit",
                  lambda n=n: gen.deutsch_jozsa(n))
    for n, iterations in ((3, 1), (4, 1), (5, 2), (6, 2), (7, 1)):
        _register(f"grover_{n}", "grover", n, "scaffcc",
                  lambda n=n, i=iterations: gen.grover(n, iterations=i))
    for n in (4, 6, 8, 10):
        _register(f"simon_{n}", "simon", n, "quipper", lambda n=n: gen.simon(n))
    for n, layers in ((6, 1), (8, 1), (10, 2), (12, 2), (14, 2), (16, 3)):
        _register(f"qaoa_{n}_p{layers}", "qaoa", n, "qiskit",
                  lambda n=n, p=layers: gen.qaoa_maxcut(n, layers=p))

    # --- arithmetic / SABRE-artifact style ----------------------------------
    for bits in (2, 3, 4, 5, 6, 7):
        n = 2 * bits + 2
        _register(f"rc_adder_{n}", "adder", n, "sabre",
                  lambda b=bits: gen.ripple_carry_adder(b))
    for n, reps in ((3, 5), (5, 5), (8, 10), (10, 10), (16, 10)):
        _register(f"tof_chain_{n}", "toffoli", n, "revlib",
                  lambda n=n, r=reps: gen.toffoli_chain(n, repetitions=r))
    for n, reps in ((4, 3), (6, 5), (8, 8), (10, 10)):
        _register(f"inc_{n}", "increment", n, "revlib",
                  lambda n=n, r=reps: rev.controlled_increment(n, repetitions=r))
    for bits in (2, 3, 5, 7):
        n = 2 * bits + 1
        _register(f"mod_adder_{n}", "mod_adder", n, "revlib",
                  lambda b=bits: rev.modular_adder(b))
    for n in (4, 5, 6):
        _register(f"hwb_{n}", "hwb", n, "revlib",
                  lambda n=n: rev.hidden_weighted_bit(n))
    for n in (5, 9, 13):
        _register(f"swaptest_{n}", "swaptest", n, "quipper",
                  lambda n=n: rev.swap_test_network(n))

    # --- randomised circuits -------------------------------------------------
    for n, gates, seed in ((8, 200, 3), (10, 500, 5), (16, 2000, 7)):
        _register(f"random_{n}_{gates}", "random", n, "revlib",
                  lambda n=n, g=gates, s=seed: gen.random_circuit(n, g, seed=s))
    _register("rev_rand_8", "random_reversible", 8, "revlib",
              lambda: rev.random_reversible(8, 300, seed=13))
    _register("supremacy_2x4", "supremacy", 8, "google",
              lambda: gen.supremacy_style(2, 4, cycles=8))

    # --- the three 36-qubit programs (Sycamore-only, as in the paper) --------
    _register("supremacy_6x6", "supremacy", 36, "google",
              lambda: gen.supremacy_style(6, 6, cycles=8))
    _register("qaoa_36_p1", "qaoa", 36, "qiskit",
              lambda: gen.qaoa_maxcut(36, layers=1, edge_probability=0.12))
    _register("random_36_2500", "random", 36, "revlib",
              lambda: gen.random_circuit(36, 2500, seed=17))


_populate()

#: Expected size of the suite (the paper's benchmark count).
SUITE_SIZE = 71


def benchmark_suite(max_qubits: int | None = None,
                    families: Sequence[str] | None = None) -> list[BenchmarkCase]:
    """The suite, optionally filtered by qubit count and family.

    Entries are sorted by ascending qubit count then name, matching how Fig. 8
    orders its x-axis ("in the ascending order of the number of qubits used").
    """
    cases = list(_REGISTRY.values())
    if max_qubits is not None:
        cases = [c for c in cases if c.num_qubits <= max_qubits]
    if families is not None:
        wanted = set(families)
        cases = [c for c in cases if c.family in wanted]
    return sorted(cases, key=lambda c: (c.num_qubits, c.name))


def get_benchmark(name: str) -> Circuit:
    """Build one suite circuit by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown benchmark {name!r}")
    return _REGISTRY[name].build()


def benchmark_names() -> list[str]:
    return [case.name for case in benchmark_suite()]


def famous_algorithms() -> list[Circuit]:
    """The seven small algorithm instances of the fidelity experiment (Fig. 9).

    All of them fit a six-qubit device so the density-matrix simulator stays
    cheap: Bernstein–Vazirani, QFT, GHZ, Grover, Deutsch–Jozsa, Simon and a
    ripple-carry adder.
    """
    return [
        gen.bernstein_vazirani(4, name="bv_4q"),
        gen.qft(4, name="qft_4q"),
        gen.ghz(4, name="ghz_4q"),
        gen.grover(3, iterations=1, name="grover_3q"),
        gen.deutsch_jozsa(4, name="dj_4q"),
        gen.simon(4, name="simon_4q"),
        gen.ripple_carry_adder(1, name="adder_4q"),
    ]
