"""RL001 fixture: guarded attribute touched outside its lock."""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  #: guarded by self._lock

    def bump(self):
        self.count += 1  # unlocked write: RL001 fires here

    def read(self):
        return self.count  # unlocked read: RL001 fires here
