"""RL001 fixture: every guarded access is under the lock (or exempt)."""

import threading

_lock = threading.Lock()
_registry: dict = {}  #: guarded by _lock


def register(name, value):
    with _lock:
        _registry[name] = value


def _drop_locked(name):
    _registry.pop(name, None)


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.count = 0  #: guarded by self._lock, self._cond

    def bump(self):
        with self._lock:
            self.count += 1

    def bump_and_notify(self):
        with self._cond:
            self.count += 1
            self._cond.notify()

    def _reset(self):
        """Zero the tally (lock held by caller)."""
        self.count = 0
