"""RL002 fixture: wall clock fed into duration math, and unannotated."""

import time


def measure(work):
    start = time.time()
    work()
    return time.time() - start  # duration from the wall clock: RL002


def stamp():
    return time.time()  # no wall-clock annotation: RL002
