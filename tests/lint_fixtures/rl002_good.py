"""RL002 fixture: monotonic durations, annotated wall-clock timestamps."""

import time


def measure(work):
    start = time.monotonic()
    work()
    return time.monotonic() - start


def stamp():
    return time.time()  # wall-clock: epoch timestamp shown to humans
