"""RL003 fixture: optional field hashed into the key even when unset."""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    name: str
    flavour: str | None = None

    @property
    def key(self):
        payload = {"name": self.name, "flavour": self.flavour}  # RL003
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def to_dict(self):
        data = {"name": self.name}
        data["flavour"] = self.flavour  # RL003: unguarded store
        return data
