"""RL003 fixture: optional fields join the payload only when set."""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    name: str
    flavour: str | None = None
    seed: int | None = None  #: key: always

    @property
    def key(self):
        payload = {"name": self.name, "seed": self.seed}
        if self.flavour is not None:
            payload["flavour"] = self.flavour
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def to_dict(self):
        data = {"name": self.name, "seed": self.seed}
        if self.flavour is not None:
            data["flavour"] = self.flavour
        return data
