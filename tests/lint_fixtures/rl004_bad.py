"""RL004 fixture: misnamed counter, incomplete histogram, rogue label."""


def render(jobs, prefix="repro"):
    lines = []
    metric = f"{prefix}_jobs_done"
    lines.append(f"# TYPE {metric} counter")  # counter missing _total: RL004
    lines.append(f"{metric} {jobs}")
    metric = f"{prefix}_wait_seconds"
    lines.append(f"# TYPE {metric} histogram")  # no _bucket/_sum/_count: RL004
    lines.append(f'{metric}{{customer="acme"}} 1')  # unknown label: RL004
    return "\n".join(lines)
