"""RL004 fixture: conventional counter, gauge and histogram series."""


def render(jobs, depth, buckets, total, prefix="repro"):
    lines = []
    metric = f"{prefix}_jobs_total"
    lines.append(f"# TYPE {metric} counter")
    lines.append(f'{metric}{{tenant="alice"}} {jobs}')
    metric = f"{prefix}_queue_depth"
    lines.append(f"# TYPE {metric} gauge")
    lines.append(f"{metric} {depth}")
    metric = f"{prefix}_wait_seconds"
    lines.append(f"# TYPE {metric} histogram")
    for bound, count in buckets:
        lines.append(f'{metric}_bucket{{le="{bound}"}} {count}')
    lines.append(f"{metric}_sum {total}")
    lines.append(f"{metric}_count {jobs}")
    return "\n".join(lines)
