"""RL005 fixture: sleeping tests and a throwaway-event wait."""

import threading
import time


def test_waits_badly():
    time.sleep(0.5)  # RL005: no sleep-ok annotation
    threading.Event().wait(0.1)  # RL005: nobody can ever set this event
