"""RL005 fixture: named-event synchronisation and an annotated sleep."""

import threading
import time


def test_waits_well():
    ready = threading.Event()
    worker = threading.Thread(target=ready.set)
    worker.start()
    assert ready.wait(5.0)
    worker.join()
    time.sleep(0.01)  # sleep-ok: bounded poll in a fixture
