"""Tests for the extended algorithm workloads (`repro.workloads.algorithms`)."""


import numpy as np
import pytest

from repro.arch.devices import get_device
from repro.core.circuit import Circuit
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.verification import verify_routing
from repro.sim.statevector import StatevectorSimulator
from repro.workloads.algorithms import (EXTENDED_FAMILIES, extended_workloads,
                                        hidden_shift, qft_adder,
                                        quantum_phase_estimation, quantum_volume,
                                        vqe_ansatz, w_state)


def _big_endian_value(index: int, qubits: int) -> int:
    """Read the ``qubits`` low-order bits of a basis index big-endian (qubit 0 = MSB)."""
    value = 0
    for q in range(qubits):
        if (index >> q) & 1:
            value |= 1 << (qubits - 1 - q)
    return value


def _big_endian_index(value: int, qubits: int) -> int:
    """Basis index whose big-endian reading over ``qubits`` bits equals ``value``."""
    index = 0
    for position in range(qubits):
        if (value >> position) & 1:
            index |= 1 << (qubits - 1 - position)
    return index


class TestQuantumPhaseEstimation:
    def test_register_sizes(self):
        circuit = quantum_phase_estimation(4)
        assert circuit.num_qubits == 5
        assert circuit.count_ops()["cu1"] >= 4

    def test_rejects_empty_counting_register(self):
        with pytest.raises(ValueError):
            quantum_phase_estimation(0)

    def test_estimates_the_programmed_phase(self):
        """The most likely counting-register outcome should approximate θ=1/3."""
        counting = 4
        circuit = quantum_phase_estimation(counting)
        state = StatevectorSimulator().run(circuit.without_measurements())
        probabilities = np.abs(state) ** 2
        best_index = int(np.argmax(probabilities))
        counting_value = _big_endian_value(best_index & ((1 << counting) - 1),
                                           counting)
        estimate = counting_value / (1 << counting)
        assert abs(estimate - 1.0 / 3.0) < 1.0 / (1 << counting)


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_single_excitation_superposition(self, n):
        state = StatevectorSimulator().run(w_state(n))
        probabilities = np.abs(state) ** 2
        # Probability mass must sit entirely on weight-1 basis states, equally.
        for index, p in enumerate(probabilities):
            weight = bin(index).count("1")
            if weight == 1:
                assert p == pytest.approx(1.0 / n, abs=1e-9)
            else:
                assert p == pytest.approx(0.0, abs=1e-9)

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            w_state(1)


class TestQuantumVolume:
    def test_default_depth_equals_width(self):
        circuit = quantum_volume(6, seed=1)
        # depth layers x (3 CX per SU(4) block) x (n // 2 pairs)
        assert circuit.count_ops()["cx"] == 6 * 3 * 3

    def test_seed_determinism(self):
        assert quantum_volume(5, seed=9) == quantum_volume(5, seed=9)
        assert quantum_volume(5, seed=9) != quantum_volume(5, seed=10)

    def test_routes_on_paper_architecture(self):
        device = get_device("ibm_q20_tokyo")
        result = CodarRouter().run(quantum_volume(8, seed=2), device)
        verify_routing(result, check_semantics=False)


class TestVqeAnsatz:
    def test_linear_entangler_gate_count(self):
        circuit = vqe_ansatz(6, layers=2, entangler="linear")
        assert circuit.count_ops()["cx"] == 2 * 5

    def test_full_entangler_gate_count(self):
        circuit = vqe_ansatz(5, layers=1, entangler="full")
        assert circuit.count_ops()["cx"] == 10  # C(5, 2)

    def test_rejects_unknown_entangler(self):
        with pytest.raises(ValueError):
            vqe_ansatz(4, entangler="ring")


class TestHiddenShift:
    def test_requires_even_register(self):
        with pytest.raises(ValueError):
            hidden_shift(5)

    def test_recovers_the_shift_string(self):
        """Measuring the output in the computational basis yields the shift."""
        n = 4
        shift = 0b1011
        circuit = hidden_shift(n, shift=shift)
        state = StatevectorSimulator().run(circuit)
        probabilities = np.abs(state) ** 2
        assert int(np.argmax(probabilities)) == shift
        assert probabilities[shift] == pytest.approx(1.0, abs=1e-9)


class TestQftAdder:
    @pytest.mark.parametrize("addend", [0, 1, 3])
    def test_adds_constant_to_basis_state(self, addend):
        bits = 3
        start_value = 2
        circuit = qft_adder(bits, addend=addend)
        # Prepare the big-endian encoding of |2> then add the constant.
        prep = Circuit(bits)
        start_index = _big_endian_index(start_value, bits)
        for q in range(bits):
            if (start_index >> q) & 1:
                prep.x(q)
        full = prep.compose(circuit)
        state = StatevectorSimulator().run(full)
        expected_value = (start_value + addend) % (1 << bits)
        expected_index = _big_endian_index(expected_value, bits)
        assert np.abs(state[expected_index]) ** 2 == pytest.approx(1.0, abs=1e-6)

    def test_wraps_modulo_two_to_the_n(self):
        bits = 3
        circuit = qft_adder(bits, addend=(1 << bits) + 1)
        # Adding 2^n + 1 is the same as adding 1 (start from |0...0>).
        state = StatevectorSimulator().run(circuit)
        expected_index = _big_endian_index(1, bits)
        assert np.abs(state[expected_index]) ** 2 == pytest.approx(1.0, abs=1e-6)


class TestExtendedRegistry:
    def test_every_family_builds(self):
        circuits = extended_workloads()
        assert len(circuits) == len(EXTENDED_FAMILIES)
        assert all(len(c) > 0 for c in circuits)

    def test_max_qubits_filter(self):
        circuits = extended_workloads(max_qubits=6)
        assert all(c.num_qubits <= 6 for c in circuits)

    def test_all_extended_workloads_route_and_comply(self):
        device = get_device("ibm_q20_tokyo")
        for circuit in extended_workloads(max_qubits=device.num_qubits):
            result = CodarRouter().run(circuit, device)
            verify_routing(result, check_semantics=circuit.num_qubits <= 8)
