"""Tests for the architecture abstraction: coupling graphs, durations, devices."""


import pytest

from repro.arch.calibration import TABLE_I, table_rows
from repro.arch.coupling import UNREACHABLE, CouplingGraph
from repro.arch.devices import (
    PAPER_ARCHITECTURES,
    get_device,
    list_devices,
    paper_devices,
)
from repro.arch.durations import (
    GateDurationMap,
    ION_TRAP_DURATIONS,
    NEUTRAL_ATOM_DURATIONS,
    SUPERCONDUCTING_DURATIONS,
    UNIFORM_DURATIONS,
)
from repro.arch.maqam import MaQAM, QubitLocks
from repro.core.gates import Gate
from repro.mapping.layout import Layout


class TestCouplingGraph:
    def test_line_topology(self):
        line = CouplingGraph.line(4)
        assert line.num_edges == 3
        assert line.are_adjacent(1, 2)
        assert not line.are_adjacent(0, 3)
        assert line.distance(0, 3) == 3

    def test_ring_topology(self):
        ring = CouplingGraph.ring(5)
        assert ring.num_edges == 5
        assert ring.distance(0, 3) == 2

    def test_grid_topology(self):
        grid = CouplingGraph.grid(3, 3)
        assert grid.num_qubits == 9
        assert grid.num_edges == 12
        assert grid.are_adjacent(0, 1)
        assert grid.are_adjacent(0, 3)
        assert not grid.are_adjacent(0, 4)
        assert grid.distance(0, 8) == 4

    def test_grid_coordinates(self):
        grid = CouplingGraph.grid(2, 3)
        assert grid.coordinates[0] == (0, 0)
        assert grid.coordinates[5] == (1, 2)
        assert grid.horizontal_distance(0, 5) == 2
        assert grid.vertical_distance(0, 5) == 1

    def test_no_coordinates_returns_zero(self):
        ring = CouplingGraph.ring(4)
        assert ring.horizontal_distance(0, 2) == 0
        assert not ring.has_coordinates

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(2, [(0, 5)])

    def test_neighbors_and_degree(self):
        grid = CouplingGraph.grid(2, 2)
        assert grid.neighbors(0) == frozenset({1, 2})
        assert grid.degree(0) == 2

    def test_disconnected_distance_is_unreachable(self):
        graph = CouplingGraph(4, [(0, 1), (2, 3)])
        assert not graph.is_connected()
        assert graph.distance(0, 3) == UNREACHABLE

    def test_connectivity_check(self):
        assert CouplingGraph.line(5).is_connected()
        assert CouplingGraph(1, []).is_connected()

    def test_shortest_path_endpoints_and_length(self):
        grid = CouplingGraph.grid(3, 3)
        path = grid.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == grid.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert grid.are_adjacent(a, b)

    def test_shortest_path_disconnected_raises(self):
        graph = CouplingGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            graph.shortest_path(0, 3)

    def test_distance_matrix_symmetric_and_zero_diagonal(self):
        grid = CouplingGraph.grid(2, 4)
        matrix = grid.distance_matrix()
        assert (matrix == matrix.T).all()
        assert all(matrix[i, i] == 0 for i in range(grid.num_qubits))

    def test_to_networkx(self):
        graph = CouplingGraph.line(4).to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3


class TestDurations:
    def test_superconducting_preset_matches_paper(self):
        # Section V-b: two-qubit gates twice as long as single-qubit gates;
        # Fig. 1(a): T=1, CX=2, SWAP=6.
        assert SUPERCONDUCTING_DURATIONS.duration_of("t") == 1
        assert SUPERCONDUCTING_DURATIONS.duration_of("cx") == 2
        assert SUPERCONDUCTING_DURATIONS.duration_of("swap") == 6

    def test_ion_trap_ratio(self):
        ratio = ION_TRAP_DURATIONS.two / ION_TRAP_DURATIONS.single
        assert ratio == pytest.approx(12.5)

    def test_neutral_atom_inversion(self):
        assert NEUTRAL_ATOM_DURATIONS.two <= NEUTRAL_ATOM_DURATIONS.single

    def test_uniform_durations(self):
        assert UNIFORM_DURATIONS.duration_of("cx") == UNIFORM_DURATIONS.duration_of("h") == 1

    def test_barrier_is_free(self):
        assert SUPERCONDUCTING_DURATIONS.duration_of("barrier") == 0

    def test_swap_defaults_to_three_cx(self):
        durations = GateDurationMap(single=2, two=5)
        assert durations.swap == 15

    def test_overrides(self):
        durations = GateDurationMap(single=1, two=2, overrides={"cz": 4})
        assert durations.duration_of("cz") == 4
        assert durations.duration_of("cx") == 2

    def test_unknown_gate_gets_two_qubit_slot(self):
        durations = GateDurationMap(single=1, two=3)
        assert durations.duration_of("mystery") == 3

    def test_duration_of_gate_instance(self):
        durations = GateDurationMap()
        assert durations.duration_of(Gate("swap", (0, 1))) == durations.swap

    def test_scaled(self):
        scaled = GateDurationMap(single=1, two=2).scaled(10)
        assert scaled.single == 10 and scaled.two == 20 and scaled.swap == 60

    def test_invalid_durations_rejected(self):
        with pytest.raises(ValueError):
            GateDurationMap(single=0)
        with pytest.raises(ValueError):
            GateDurationMap(single=1, two=-1)

    def test_for_technology_accepts_strings(self):
        assert GateDurationMap.for_technology("ion_trap") == ION_TRAP_DURATIONS

    def test_as_dict_covers_gate_set(self):
        mapping = SUPERCONDUCTING_DURATIONS.as_dict()
        assert mapping["cx"] == 2
        assert "u3" in mapping


class TestDevices:
    def test_registry_contains_paper_architectures(self):
        for name in PAPER_ARCHITECTURES:
            assert name in list_devices()

    def test_melbourne_is_16_qubit_ladder(self):
        device = get_device("ibm_q16_melbourne")
        assert device.num_qubits == 16
        assert device.coupling.is_connected()

    def test_tokyo_has_diagonals(self):
        device = get_device("ibm_q20_tokyo")
        assert device.num_qubits == 20
        assert device.coupling.are_adjacent(1, 7)
        assert device.coupling.are_adjacent(6, 10)
        assert not device.coupling.are_adjacent(0, 6)

    def test_grid_6x6(self):
        device = get_device("grid_6x6")
        assert device.num_qubits == 36
        assert device.coupling.num_edges == 60

    def test_sycamore_size_and_degree(self):
        device = get_device("google_sycamore54")
        assert device.num_qubits == 54
        assert device.coupling.is_connected()
        assert max(device.coupling.degree(q) for q in range(54)) <= 4

    def test_parametric_grid(self):
        device = get_device("grid", rows=2, cols=3)
        assert device.num_qubits == 6

    def test_parametric_requires_arguments(self):
        with pytest.raises(ValueError):
            get_device("grid")
        with pytest.raises(ValueError):
            get_device("line")

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("ibm_q9000")

    def test_duration_override(self):
        device = get_device("ibm_q20_tokyo", durations=UNIFORM_DURATIONS)
        assert device.durations.duration_of("cx") == 1

    def test_paper_devices_order(self):
        devices = paper_devices()
        assert [d.name for d in devices] == list(PAPER_ARCHITECTURES)

    def test_default_durations_are_superconducting(self):
        for device in paper_devices():
            assert device.durations.duration_of("cx") == 2
            assert device.durations.duration_of("swap") == 6


class TestCalibration:
    def test_table_has_six_columns(self):
        assert len(TABLE_I) == 6
        assert len(table_rows()) == 6

    def test_superconducting_two_qubit_slower(self):
        for key in ("ibm_q5", "ibm_q16"):
            ratio = TABLE_I[key].duration_ratio()
            assert ratio is not None and ratio >= 2.0

    def test_ion_trap_much_slower_than_superconducting(self):
        ion = TABLE_I["ion_q5"]
        ibm = TABLE_I["ibm_q16"]
        assert ion.duration_2q_ns > 100 * ibm.duration_2q_ns

    def test_neutral_atom_two_qubit_fidelity_worst(self):
        fidelities = {k: c.fidelity_2q for k, c in TABLE_I.items() if c.fidelity_2q}
        assert min(fidelities, key=fidelities.get) == "neutral_atom"

    def test_duration_map_derivation(self):
        durations = TABLE_I["ibm_q16"].duration_map()
        assert durations.two >= 2
        assert durations.swap == 3 * durations.two

    def test_duration_map_fallback_without_timing(self):
        cal = TABLE_I["ion_q11"]
        durations = cal.duration_map()
        assert durations.two > durations.single


class TestQubitLocks:
    def test_initially_free(self):
        locks = QubitLocks(3)
        assert locks.all_free([0, 1, 2], now=0)

    def test_lock_and_release(self):
        locks = QubitLocks(2)
        locks.lock([0], until=5)
        assert not locks.is_free(0, now=3)
        assert locks.is_free(0, now=5)
        assert locks.is_free(1, now=0)

    def test_lock_never_shortens(self):
        locks = QubitLocks(1)
        locks.lock([0], until=10)
        locks.lock([0], until=4)
        assert locks.t_end(0) == 10

    def test_next_release(self):
        locks = QubitLocks(3)
        locks.lock([0], until=4)
        locks.lock([1], until=7)
        assert locks.next_release(now=0) == 4
        assert locks.next_release(now=4) == 7
        assert locks.next_release(now=7) is None

    def test_busy_qubits(self):
        locks = QubitLocks(3)
        locks.lock([2], until=3)
        assert locks.busy_qubits(now=1) == [2]


class TestMaQAM:
    def _machine(self):
        device = get_device("grid", rows=2, cols=2)
        return MaQAM.create(device, Layout.identity(4))

    def test_gate_executability_respects_coupling(self):
        machine = self._machine()
        assert machine.gate_is_executable(Gate("cx", (0, 1)))
        assert not machine.gate_is_executable(Gate("cx", (0, 3)))

    def test_launch_locks_operands(self):
        machine = self._machine()
        finish = machine.launch("cx", (0, 1))
        assert finish == 2
        assert not machine.gate_is_lock_free(Gate("h", (0,)))
        assert machine.gate_is_lock_free(Gate("h", (2,)))

    def test_advance_clock(self):
        machine = self._machine()
        machine.launch("t", (0,))
        machine.launch("cx", (1, 3))
        assert machine.advance_clock()
        assert machine.now == 1
        assert machine.advance_clock()
        assert machine.now == 2
        assert not machine.advance_clock()

    def test_distance_through_layout(self):
        machine = self._machine()
        assert machine.distance(0, 3) == 2
        machine.layout.swap_physical(1, 3)
        assert machine.distance(0, 3) == 1
