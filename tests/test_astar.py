"""Tests for the layered A* router and its layer/search substrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.coupling import CouplingGraph
from repro.arch.devices import get_device
from repro.core.circuit import Circuit
from repro.mapping.astar import (AStarConfig, AStarRouter, astar_mapping_search,
                                 two_qubit_layers)
from repro.mapping.astar.layers import layer_statistics
from repro.mapping.astar.search import greedy_complete
from repro.mapping.layout import Layout
from repro.mapping.sabre.remapper import SabreRouter
from repro.mapping.verification import verify_routing
from repro.workloads import generators as gen


# --------------------------------------------------------------------------- #
# Layer partitioning
# --------------------------------------------------------------------------- #
class TestLayers:
    def test_no_qubit_repeats_within_a_layer(self):
        circuit = gen.qft(6)
        for layer in two_qubit_layers(circuit):
            seen = []
            for gate in layer.two_qubit + layer.passthrough:
                seen.extend(gate.qubits)
            assert len(seen) == len(set(seen))

    def test_every_gate_lands_in_exactly_one_layer(self):
        circuit = gen.random_circuit(8, 120, seed=11)
        layers = two_qubit_layers(circuit)
        total = sum(len(layer.two_qubit) + len(layer.passthrough)
                    for layer in layers)
        assert total == len(circuit)

    def test_concatenation_preserves_per_qubit_order(self):
        circuit = gen.random_circuit(6, 80, seed=5)
        layers = two_qubit_layers(circuit)
        flattened = [g for layer in layers for g in layer.gates_in_order()]
        for qubit in range(circuit.num_qubits):
            original = [g for g in circuit.gates if qubit in g.qubits]
            reordered = [g for g in flattened if qubit in g.qubits]
            assert original == reordered

    def test_parallel_cx_gates_share_a_layer(self):
        circuit = Circuit(4).cx(0, 1).cx(2, 3)
        layers = two_qubit_layers(circuit)
        assert len(layers) == 1
        assert len(layers[0].two_qubit) == 2

    def test_dependent_cx_gates_split_layers(self):
        circuit = Circuit(3).cx(0, 1).cx(1, 2)
        layers = two_qubit_layers(circuit)
        assert len(layers) == 2

    def test_single_qubit_gates_are_passthrough(self):
        circuit = Circuit(2).h(0).t(1).cx(0, 1)
        layers = two_qubit_layers(circuit)
        assert layers[0].passthrough and not layers[0].two_qubit
        assert layers[1].two_qubit

    def test_bare_barrier_closes_layers(self):
        circuit = Circuit(4).cx(0, 1)
        circuit.barrier()
        circuit.cx(2, 3)
        layers = two_qubit_layers(circuit)
        # The barrier forces the second CX into a later layer even though it
        # shares no qubit with the first.
        cx_layers = [layer.index for layer in layers if layer.two_qubit]
        assert len(cx_layers) == 2 and cx_layers[0] < cx_layers[1]

    def test_empty_circuit_has_no_layers(self):
        assert two_qubit_layers(Circuit(3)) == []

    def test_statistics_report(self):
        stats = layer_statistics(gen.qft(5))
        assert stats["num_gates"] == len(gen.qft(5))
        assert stats["num_layers"] >= stats["max_layer_width"] > 0

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=25, deadline=None)
    def test_layering_is_a_permutation_of_the_circuit(self, qubits, gates, seed):
        circuit = gen.random_circuit(qubits, gates, seed=seed)
        layers = two_qubit_layers(circuit)
        flattened = [g for layer in layers for g in layer.gates_in_order()]
        assert sorted(map(str, flattened)) == sorted(map(str, circuit.gates))


# --------------------------------------------------------------------------- #
# A* mapping search
# --------------------------------------------------------------------------- #
class TestMappingSearch:
    def test_already_adjacent_needs_no_swaps(self):
        coupling = CouplingGraph.line(4)
        result = astar_mapping_search(coupling, Layout.identity(4), [(0, 1)])
        assert result.solved and result.swaps == []

    def test_single_pair_on_a_line(self):
        coupling = CouplingGraph.line(4)
        result = astar_mapping_search(coupling, Layout.identity(4), [(0, 3)])
        assert result.solved
        assert len(result.swaps) == 2  # distance 3 -> adjacency needs 2 swaps
        assert coupling.are_adjacent(result.layout.physical(0),
                                     result.layout.physical(3))

    def test_multiple_pairs_all_become_adjacent(self):
        coupling = CouplingGraph.grid(3, 3)
        pairs = [(0, 8), (2, 6)]
        result = astar_mapping_search(coupling, Layout.identity(9), pairs)
        assert result.solved
        for a, b in pairs:
            assert coupling.are_adjacent(result.layout.physical(a),
                                         result.layout.physical(b))

    def test_budget_zero_returns_unsolved_partial(self):
        coupling = CouplingGraph.line(5)
        result = astar_mapping_search(coupling, Layout.identity(5), [(0, 4)],
                                      max_expansions=0)
        assert not result.solved
        assert result.swaps == []

    def test_greedy_complete_finishes_the_job(self):
        coupling = CouplingGraph.line(5)
        layout = Layout.identity(5)
        swaps = greedy_complete(coupling, layout, [(0, 4)])
        assert swaps
        assert coupling.are_adjacent(layout.physical(0), layout.physical(4))

    def test_search_does_not_mutate_input_layout(self):
        coupling = CouplingGraph.line(4)
        layout = Layout.identity(4)
        astar_mapping_search(coupling, layout, [(0, 3)])
        assert layout == Layout.identity(4)

    def test_lookahead_changes_nothing_when_next_layer_is_empty(self):
        coupling = CouplingGraph.grid(2, 3)
        with_la = astar_mapping_search(coupling, Layout.identity(6), [(0, 5)],
                                       lookahead_pairs=[])
        assert with_la.solved


# --------------------------------------------------------------------------- #
# Router end-to-end
# --------------------------------------------------------------------------- #
class TestAStarRouter:
    @pytest.mark.parametrize("device_name", ["ibm_q16_melbourne", "ibm_q20_tokyo"])
    def test_routed_circuits_verify(self, device_name):
        device = get_device(device_name)
        for circuit in (gen.qft(6), gen.bernstein_vazirani(7),
                        gen.random_circuit(8, 150, seed=2)):
            result = AStarRouter().run(circuit, device)
            verify_routing(result)

    def test_no_swaps_needed_when_circuit_fits_coupling(self):
        device = get_device("line", num_qubits=4)
        circuit = Circuit(4).cx(0, 1).cx(1, 2).cx(2, 3)
        result = AStarRouter().run(circuit, device, layout_strategy="identity")
        assert result.swap_count == 0
        assert len(result.routed) == len(circuit)

    def test_gate_counts_match_plus_swaps(self):
        device = get_device("grid_6x6")
        circuit = gen.qft(8)
        result = AStarRouter().run(circuit, device)
        assert len(result.routed) == len(circuit) + result.swap_count

    def test_extra_metadata_is_reported(self):
        device = get_device("ibm_q20_tokyo")
        result = AStarRouter().run(gen.qft(6), device)
        assert result.extra["layers"] > 0
        assert result.extra["expanded_states"] >= 0

    def test_budget_exhaustion_still_routes_correctly(self):
        config = AStarConfig(max_expansions=1)
        device = get_device("ibm_q20_tokyo")
        circuit = gen.random_circuit(12, 200, seed=9)
        result = AStarRouter(config).run(circuit, device)
        verify_routing(result)
        assert result.extra["budget_exhausted_layers"] >= 0

    def test_lookahead_can_be_disabled(self):
        config = AStarConfig(use_lookahead=False)
        device = get_device("ibm_q16_melbourne")
        result = AStarRouter(config).run(gen.qft(6), device)
        verify_routing(result)

    def test_swap_count_is_competitive_with_sabre(self):
        """A* should stay within a small factor of SABRE on small circuits."""
        device = get_device("ibm_q20_tokyo")
        circuit = gen.qft(8)
        astar = AStarRouter().run(circuit, device)
        sabre = SabreRouter().run(circuit, device,
                                  initial_layout=astar.initial_layout)
        assert astar.swap_count <= max(3 * sabre.swap_count, sabre.swap_count + 10)

    def test_measurements_and_barriers_survive_routing(self):
        device = get_device("line", num_qubits=5)
        circuit = gen.ghz(4)
        circuit.barrier()
        circuit.measure_all()
        result = AStarRouter().run(circuit, device)
        ops = result.routed.count_ops()
        assert ops["measure"] == 4
