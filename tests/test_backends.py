"""Differential suite for the router-backend seam (``repro.compiler.backends``).

The contract under test: a backend may only *accelerate* scoring, never change
the answer.  Every kernel of the ``numpy`` backend must therefore be
bit-identical to the scalar ``python`` reference — same swap scores (including
the float fine/lookahead terms), same chosen swaps under ties, same routed
circuits end to end — across random circuits, devices and layouts.  The suite
also pins the key-stability rule (the ``backend`` field joins content
addresses only when set) and the caches this PR leans on (analysis LRU,
content-addressed parse cache).
"""

import random

import pytest

from repro.service.registry import build_device
from repro.compiler.backends import (DEFAULT_BACKEND, backend_names,
                                     get_backend, has_backend, list_backends,
                                     register_backend)
from repro.compiler.backends.python import PythonBackend
from repro.core.gates import Gate
from repro.mapping.layout import Layout
from repro.qasm.exporter import circuit_to_qasm
from repro.service.registry import build_router
from repro.workloads.generators import random_circuit

DEVICES = ("grid_4x4", "ibm_q20_tokyo")
ROUTERS = ("codar", "sabre", "astar", "codar_noise_aware")

py = get_backend("python")
nq = get_backend("numpy")


def _random_layout(rng: random.Random, num_qubits: int) -> Layout:
    perm = list(range(num_qubits))
    rng.shuffle(perm)
    return Layout(perm)


def _random_gates(rng: random.Random, num_logical: int,
                  count: int) -> list[Gate]:
    gates = []
    for _ in range(count):
        a, b = rng.sample(range(num_logical), 2)
        gates.append(Gate("cx", (a, b)))
    return gates


def _candidate_edges(coupling) -> list[tuple[int, int]]:
    return sorted((min(a, b), max(a, b)) for a, b in coupling.edges)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_backends_are_registered(self):
        assert {"python", "numpy"} <= set(backend_names())
        assert DEFAULT_BACKEND == "python"
        assert get_backend().name == "python"
        assert get_backend("numpy").name == "numpy"
        for name, description in list_backends().items():
            assert isinstance(description, str)
            assert has_backend(name)

    def test_backends_are_lazy_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend(None) is get_backend("python")

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("fortran")
        assert not has_backend("fortran")

    def test_reregistration_needs_overwrite(self):
        register_backend("test_tmp_backend", PythonBackend,
                         description="test double")
        assert has_backend("test_tmp_backend")
        with pytest.raises(ValueError, match="already registered"):
            register_backend("test_tmp_backend", PythonBackend)
        register_backend("test_tmp_backend", PythonBackend,
                         description="replaced", overwrite=True)
        assert list_backends()["test_tmp_backend"] == "replaced"


# --------------------------------------------------------------------------- #
# Kernel-level parity (python vs numpy, exact equality including floats)
# --------------------------------------------------------------------------- #
class TestKernelParity:
    @pytest.mark.parametrize("device_name", DEVICES)
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_codar_swap_scores_identical(self, device_name, seed):
        device = build_device(device_name)
        coupling = device.coupling
        rng = random.Random(seed)
        candidates = _candidate_edges(coupling)
        for _trial in range(5):
            layout = _random_layout(rng, coupling.num_qubits)
            targets = _random_gates(rng, coupling.num_qubits, rng.randint(1, 6))
            lookahead = _random_gates(rng, coupling.num_qubits,
                                      rng.randint(0, 5))
            for use_fine in (True, False):
                # 0.3 is deliberately non-dyadic: the accumulated float
                # weights only match if the numpy kernel mirrors the scalar
                # ``weight *= decay`` recurrence exactly.
                for decay in (0.5, 0.3):
                    expected = py.codar_swap_scores(
                        coupling, layout, candidates, targets,
                        use_fine=use_fine, lookahead_gates=lookahead,
                        lookahead_decay=decay)
                    got = nq.codar_swap_scores(
                        coupling, layout, candidates, targets,
                        use_fine=use_fine, lookahead_gates=lookahead,
                        lookahead_decay=decay)
                    assert got == expected

    @pytest.mark.parametrize("device_name", DEVICES)
    @pytest.mark.parametrize("seed", (4, 5, 6))
    def test_codar_best_swap_identical_under_ties(self, device_name, seed):
        device = build_device(device_name)
        coupling = device.coupling
        rng = random.Random(seed)
        candidates = _candidate_edges(coupling)
        for _trial in range(8):
            layout = _random_layout(rng, coupling.num_qubits)
            # A single gate makes most candidates score 0 — maximal ties, so
            # this exercises the smallest-edge tie-break hardest.
            targets = _random_gates(rng, coupling.num_qubits, 1)
            lookahead = _random_gates(rng, coupling.num_qubits,
                                      rng.randint(0, 3))
            expected = py.codar_best_swap(coupling, layout, candidates,
                                          targets, lookahead_gates=lookahead)
            got = nq.codar_best_swap(coupling, layout, candidates, targets,
                                     lookahead_gates=lookahead)
            assert got == expected

    @pytest.mark.parametrize("device_name", DEVICES)
    @pytest.mark.parametrize("seed", (7, 8, 9))
    def test_sabre_scores_and_best_swap_identical(self, device_name, seed):
        device = build_device(device_name)
        coupling = device.coupling
        rng = random.Random(seed)
        candidates = _candidate_edges(coupling)
        for _trial in range(5):
            layout = _random_layout(rng, coupling.num_qubits)
            front = _random_gates(rng, coupling.num_qubits, rng.randint(1, 4))
            extended = _random_gates(rng, coupling.num_qubits,
                                     rng.randint(0, 8))
            decay = [1.0 + rng.random() for _ in range(coupling.num_qubits)]
            expected = py.sabre_scores(coupling, layout, candidates, front,
                                       extended, decay, 0.5)
            got = nq.sabre_scores(coupling, layout, candidates, front,
                                  extended, decay, 0.5)
            assert got == expected
            assert (nq.sabre_best_swap(coupling, layout, candidates, front,
                                       extended, decay, 0.5)
                    == py.sabre_best_swap(coupling, layout, candidates, front,
                                          extended, decay, 0.5))

    @pytest.mark.parametrize("device_name", DEVICES)
    def test_pairs_distance_identical(self, device_name):
        device = build_device(device_name)
        coupling = device.coupling
        rng = random.Random(10)
        for _trial in range(10):
            layout = _random_layout(rng, coupling.num_qubits)
            pairs = [tuple(rng.sample(range(coupling.num_qubits), 2))
                     for _ in range(rng.randint(1, 6))]
            assert (nq.pairs_distance(coupling, layout, pairs)
                    == py.pairs_distance(coupling, layout, pairs))
        assert nq.pairs_distance(coupling, Layout.identity(
            coupling.num_qubits), []) == 0

    @pytest.mark.parametrize("device_name", DEVICES)
    def test_shortest_path_via_predecessor_matches_bfs(self, device_name):
        # Two independent coupling instances: one answers with the per-call
        # BFS, the other through the predecessor-matrix walk.  Paths must be
        # node-for-node identical (the matrix BFS visits sorted neighbours,
        # same as the per-call BFS).
        bfs_coupling = build_device(device_name).coupling
        walk_coupling = build_device(device_name).coupling
        assert bfs_coupling is not walk_coupling
        walk_coupling.predecessor_matrix()
        n = bfs_coupling.num_qubits
        for a in range(n):
            for b in range(n):
                assert (walk_coupling.shortest_path(a, b)
                        == bfs_coupling.shortest_path(a, b)), (a, b)

    def test_predecessor_matrix_invalidated_by_add_edge(self):
        from repro.arch.coupling import CouplingGraph

        coupling = CouplingGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert coupling.shortest_path(0, 3) == [0, 1, 2, 3]
        coupling.predecessor_matrix()
        coupling.add_edge(0, 3)
        assert coupling.shortest_path(0, 3) == [0, 3]


# --------------------------------------------------------------------------- #
# End-to-end routing parity
# --------------------------------------------------------------------------- #
class TestRoutedCircuitParity:
    @pytest.mark.parametrize("router_name", ROUTERS)
    @pytest.mark.parametrize("device_name", DEVICES)
    def test_routed_circuits_identical(self, router_name, device_name):
        device = build_device(device_name)
        for seed, strategy in ((21, "degree"), (22, "random")):
            circuit = random_circuit(6, 60, seed=seed,
                                     two_qubit_fraction=0.5)
            results = {}
            for backend_name in ("python", "numpy"):
                router = build_router(router_name)
                router.backend = backend_name
                result = router.run(circuit.copy(), device,
                                    layout_strategy=strategy, seed=7)
                results[backend_name] = (circuit_to_qasm(result.routed),
                                         result.swap_count, result.depth,
                                         result.weighted_depth,
                                         result.final_layout.physical_list())
            assert results["numpy"] == results["python"], (
                f"{router_name}/{device_name}/{strategy} diverged")


# --------------------------------------------------------------------------- #
# Key stability: ``backend`` joins content addresses only when set
# --------------------------------------------------------------------------- #
class TestKeyStability:
    def test_route_stage_params_omit_unset_backend(self):
        from repro.compiler.stages import RouteStage

        assert "backend" not in RouteStage(router="codar").params()
        assert RouteStage(router="codar",
                          backend="numpy").params()["backend"] == "numpy"
        with pytest.raises(ValueError, match="unknown backend"):
            RouteStage(router="codar", backend="fortran")

    def test_compile_job_key_and_payload_stability(self):
        from repro.service.jobs import CompileJob, job_from_dict

        qasm = ('OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\n'
                'cx q[0],q[1];\n')
        plain = CompileJob(qasm=qasm, device="grid_4x4", router="codar")
        tagged = CompileJob(qasm=qasm, device="grid_4x4", router="codar",
                            backend="numpy")
        assert "backend" not in plain.to_dict()
        assert tagged.to_dict()["backend"] == "numpy"
        assert plain.key != tagged.key
        # Round-trip preserves the backend (and therefore the key).
        assert job_from_dict(tagged.to_dict()).key == tagged.key
        assert job_from_dict(plain.to_dict()).key == plain.key
        with pytest.raises(ValueError, match="unknown backend"):
            CompileJob(qasm=qasm, device="grid_4x4", router="codar",
                       backend="fortran")

    def test_candidate_key_stability_and_seed_pinning(self):
        from repro.portfolio.candidates import Candidate

        plain = Candidate("codar")
        tagged = Candidate("codar", backend="numpy")
        assert "backend" not in plain.to_dict()
        assert tagged.to_dict()["backend"] == "numpy"
        assert plain.key != tagged.key
        assert Candidate.from_dict(tagged.to_dict()).key == tagged.key
        pinned = tagged.with_seed(3)
        assert pinned.backend == "numpy" and pinned.seed == 3
        job = tagged.job_for("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
                             "qreg q[2];\ncx q[0],q[1];\n", "grid_4x4")
        assert job.backend == "numpy"
        with pytest.raises(ValueError, match="unknown backend"):
            Candidate("codar", backend="fortran")


# --------------------------------------------------------------------------- #
# Analysis-cache LRU regression (eviction must follow recency, not insertion)
# --------------------------------------------------------------------------- #
class TestAnalysisCacheLRU:
    def test_hits_refresh_eviction_order(self, monkeypatch):
        from repro.compiler import analysis

        monkeypatch.setattr(analysis, "_ANALYSIS_CACHE_LIMIT", 2)
        analysis.clear_cache()
        try:
            d1, d2, d3 = (build_device("grid_2x2"), build_device("grid_2x3"),
                          build_device("grid_3x3"))
            analysis.analyze(d1)
            analysis.analyze(d2)
            # Touch d1: it is now the most recently used entry, so admitting
            # d3 must evict d2 — the insertion-order bug evicted d1 here.
            analysis.analyze(d1)
            analysis.analyze(d3)
            before = analysis.cache_stats()
            analysis.analyze(build_device("grid_2x2"))
            after = analysis.cache_stats()
            assert after["hits"] == before["hits"] + 1
            assert after["misses"] == before["misses"]
            analysis.analyze(build_device("grid_2x3"))  # was evicted: a miss
            assert analysis.cache_stats()["misses"] == after["misses"] + 1
        finally:
            analysis.clear_cache()


# --------------------------------------------------------------------------- #
# Content-addressed parse cache
# --------------------------------------------------------------------------- #
QASM = ('OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\n'
        'h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n')


class TestParseCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        from repro.compiler import parse_cache

        parse_cache.clear_cache()
        yield
        parse_cache.clear_cache()

    def test_hit_after_miss_and_stats(self):
        from repro.compiler import parse_cache

        circuit, hit = parse_cache.parse_cached_info(QASM, name="first")
        assert not hit and circuit.name == "first"
        again, hit = parse_cache.parse_cached_info(QASM, name="second")
        assert hit and again.name == "second"
        stats = parse_cache.cache_stats()
        assert stats == {"hits": 1, "misses": 1, "evictions": 0, "entries": 1}

    def test_returned_circuits_are_independent_copies(self):
        from repro.compiler import parse_cache
        from repro.core.gates import Gate

        first = parse_cache.parse_cached(QASM)
        first.append(Gate("x", (0,)))  # caller-side mutation
        second = parse_cache.parse_cached(QASM)
        assert len(second) == len(parse_cache.parse_cached(QASM))
        assert len(first) == len(second) + 1

    def test_eviction_is_lru_and_counted(self, monkeypatch):
        from repro.compiler import parse_cache

        monkeypatch.setattr(parse_cache, "_CACHE_LIMIT", 2)
        texts = [QASM.replace("q[3]", f"q[{n}]") for n in (3, 4, 5)]
        for text in texts:
            parse_cache.parse_cached(text)
        stats = parse_cache.cache_stats()
        assert stats["evictions"] == 1 and stats["entries"] == 2
        assert parse_cache.parse_cached_info(texts[0])[1] is False  # evicted
        assert parse_cache.parse_cached_info(texts[2])[1] is True

    def test_parse_errors_are_not_cached(self):
        from repro.compiler import parse_cache
        from repro.qasm import QasmError

        for _ in range(2):
            with pytest.raises(QasmError):
                parse_cache.parse_cached("qreg q[2]; nonsense")
        stats = parse_cache.cache_stats()
        assert stats["entries"] == 0 and stats["misses"] == 0

    def test_parse_stage_records_cache_hits(self):
        from repro.compiler import Pipeline

        device = build_device("grid_4x4")
        pipeline = Pipeline.from_spec({"stages": ["parse", "layout", "route",
                                                  "schedule"]})
        first = pipeline.run(QASM, device, seed=1)
        second = pipeline.run(QASM, device, seed=1)

        def parse_metrics(result):
            row = next(r for r in result.summary()["extra"]["stages"]
                       if r["stage"] == "parse")
            return row["metrics"]

        assert parse_metrics(first)["cache_hit"] is False
        assert parse_metrics(second)["cache_hit"] is True
        assert (circuit_to_qasm(first.compiled)
                == circuit_to_qasm(second.compiled))


# --------------------------------------------------------------------------- #
# Server metrics surface
# --------------------------------------------------------------------------- #
class TestBackendMetrics:
    def test_backend_counter_and_parse_cache_exposition(self):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.observe_backend("numpy")
        metrics.observe_backend("numpy")
        metrics.observe_backend("python")
        assert metrics.backend_jobs() == {"numpy": 2, "python": 1}
        text = metrics.to_prometheus()
        assert 'repro_server_backend_jobs_total{backend="numpy"} 2' in text
        assert 'repro_server_backend_jobs_total{backend="python"} 1' in text
        assert "repro_server_parse_cache_hits_total" in text
        assert "repro_server_parse_cache_entries" in text
        snapshot = metrics.snapshot()
        assert snapshot["backends"] == {"numpy": 2, "python": 1}
        assert {"hits", "misses", "evictions",
                "entries"} <= set(snapshot["parse_cache"])
