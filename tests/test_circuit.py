"""Unit tests for the Circuit container (repro.core.circuit)."""


import pytest

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.arch.durations import GateDurationMap


class TestConstruction:
    def test_empty_circuit(self):
        circ = Circuit(3)
        assert circ.num_qubits == 3
        assert len(circ) == 0
        assert circ.depth() == 0

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Circuit(-1)
        with pytest.raises(ValueError):
            Circuit(2, num_clbits=-1)

    def test_builder_methods_chain(self):
        circ = Circuit(2).h(0).cx(0, 1).t(1)
        assert [g.name for g in circ] == ["h", "cx", "t"]

    def test_append_validates_register(self):
        circ = Circuit(2)
        with pytest.raises(ValueError, match="outside register"):
            circ.append(Gate("h", (5,)))

    def test_add_by_name(self):
        circ = Circuit(2)
        circ.add("rz", [1], [0.3])
        assert circ[0].params == (0.3,)

    def test_measure_grows_classical_register(self):
        circ = Circuit(3)
        circ.measure(2, 5)
        assert circ.num_clbits == 6

    def test_measure_all(self):
        circ = Circuit(3).measure_all()
        assert circ.count_ops()["measure"] == 3
        assert circ.num_clbits == 3

    def test_ccx_decomposes_into_elementary_gates(self):
        circ = Circuit(3).ccx(0, 1, 2)
        names = circ.count_ops()
        assert names["cx"] == 6
        assert all(g.num_qubits <= 2 for g in circ)

    def test_equality(self):
        a = Circuit(2).h(0).cx(0, 1)
        b = Circuit(2).h(0).cx(0, 1)
        c = Circuit(2).h(1).cx(0, 1)
        assert a == b
        assert a != c


class TestAnalysis:
    def test_count_ops(self):
        circ = Circuit(3).h(0).h(1).cx(0, 1).cx(1, 2)
        assert circ.count_ops() == {"h": 2, "cx": 2}

    def test_two_qubit_gates(self):
        circ = Circuit(3).h(0).cx(0, 1).swap(1, 2)
        assert circ.num_two_qubit_gates() == 2
        assert [g.name for g in circ.two_qubit_gates()] == ["cx", "swap"]

    def test_used_qubits(self):
        circ = Circuit(5).h(0).cx(2, 4)
        assert circ.used_qubits() == {0, 2, 4}

    def test_depth_serial_vs_parallel(self):
        serial = Circuit(1).h(0).t(0).h(0)
        parallel = Circuit(3).h(0).h(1).h(2)
        assert serial.depth() == 3
        assert parallel.depth() == 1

    def test_depth_ignores_barriers(self):
        circ = Circuit(2).h(0).barrier(0, 1).h(1)
        assert circ.depth() == 1

    def test_weighted_depth_uses_durations(self):
        circ = Circuit(2).t(0).cx(0, 1)
        durations = GateDurationMap(single=1, two=2, swap=6)
        # t finishes at 1, cx waits for qubit 0 -> starts 1, ends 3.
        assert circ.weighted_depth(durations) == 3

    def test_weighted_depth_with_plain_mapping(self):
        circ = Circuit(2).h(0).cx(0, 1)
        assert circ.weighted_depth({"h": 1, "cx": 10}) == 11


class TestTransforms:
    def test_copy_is_independent(self):
        circ = Circuit(2).h(0)
        clone = circ.copy()
        clone.x(1)
        assert len(circ) == 1
        assert len(clone) == 2

    def test_inverse_reverses_and_inverts(self):
        circ = Circuit(2).h(0).s(0).cx(0, 1)
        inv = circ.inverse()
        assert [g.name for g in inv] == ["cx", "sdg", "h"]

    def test_inverse_drops_measurements(self):
        circ = Circuit(1).h(0).measure(0)
        assert [g.name for g in circ.inverse()] == ["h"]

    def test_reversed_order_keeps_gate_names(self):
        circ = Circuit(2).h(0).cx(0, 1)
        assert [g.name for g in circ.reversed_order()] == ["cx", "h"]

    def test_compose(self):
        first = Circuit(2).h(0)
        second = Circuit(2).cx(0, 1)
        combined = first.compose(second)
        assert [g.name for g in combined] == ["h", "cx"]
        with pytest.raises(ValueError):
            Circuit(1).compose(Circuit(3))

    def test_remap_qubits(self):
        circ = Circuit(2).cx(0, 1)
        remapped = circ.remap_qubits({0: 3, 1: 1}, num_qubits=4)
        assert remapped[0].qubits == (3, 1)
        assert remapped.num_qubits == 4

    def test_without_measurements(self):
        circ = Circuit(2).h(0).measure_all().barrier()
        stripped = circ.without_measurements()
        assert [g.name for g in stripped] == ["h"]

    def test_filter_gates(self):
        circ = Circuit(2).h(0).cx(0, 1).t(1)
        only_single = circ.filter_gates(lambda g: g.num_qubits == 1)
        assert [g.name for g in only_single] == ["h", "t"]

    def test_from_gates(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        circ = Circuit.from_gates(2, gates, name="built")
        assert circ.name == "built"
        assert len(circ) == 2
