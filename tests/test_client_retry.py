"""Retry-with-jitter behaviour of :class:`repro.server.client.CompileClient`.

A scripted stub server plays back a per-request sequence of behaviours
(``429``, ``503``, an abrupt connection reset, or a good ``200`` JSON reply)
so the tests can assert exactly how many attempts the client makes without a
real compile server in the loop.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.server.client import CompileClient, ServerError

OK_BODY = {"status": "ok"}


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Each request consumes the next scripted behaviour."""

    protocol_version = "HTTP/1.1"

    def log_message(self, *args):  # noqa: A002 — keep test output clean
        pass

    def _next(self) -> int | str:
        with self.server.lock:  # type: ignore[attr-defined]
            self.server.hits += 1  # type: ignore[attr-defined]
            script = self.server.script  # type: ignore[attr-defined]
            return script.pop(0) if script else 200

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        step = self._next()
        if step == "reset":
            # Close without writing a response: the client sees the peer
            # hang up mid-request (RemoteDisconnected / ConnectionReset).
            self.connection.close()
            self.close_connection = True
            return
        body = json.dumps(OK_BODY if step == 200
                          else {"error": f"scripted {step}"}).encode()
        self.send_response(step)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    do_POST = do_GET


@pytest.fixture()
def stub_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = []
    server.hits = 0
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.01}, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def _client(server, **kwargs) -> CompileClient:
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_s", 0.01)
    host, port = server.server_address[:2]
    return CompileClient(f"http://{host}:{port}", timeout=5.0, **kwargs)


def test_retries_through_429_then_succeeds(stub_server):
    stub_server.script = [429, 429, 200]
    client = _client(stub_server)
    assert client.health() == OK_BODY
    assert stub_server.hits == 3
    assert client.retried == 2


def test_retries_through_503(stub_server):
    stub_server.script = [503, 200]
    client = _client(stub_server)
    assert client.health() == OK_BODY
    assert stub_server.hits == 2


def test_retries_through_connection_reset(stub_server):
    stub_server.script = ["reset", 200]
    client = _client(stub_server)
    assert client.health() == OK_BODY
    assert stub_server.hits == 2
    assert client.retried == 1


def test_bounded_retries_then_raises(stub_server):
    stub_server.script = [429, 429, 429, 429, 429]
    client = _client(stub_server, retries=2)
    with pytest.raises(ServerError) as excinfo:
        client.health()
    assert excinfo.value.status == 429
    assert stub_server.hits == 3  # 1 attempt + 2 retries, strictly bounded


def test_zero_retries_disables_retrying(stub_server):
    stub_server.script = [503, 200]
    client = _client(stub_server, retries=0)
    with pytest.raises(ServerError) as excinfo:
        client.health()
    assert excinfo.value.status == 503
    assert stub_server.hits == 1


def test_non_transient_statuses_are_not_retried(stub_server):
    stub_server.script = [404, 200]
    client = _client(stub_server)
    with pytest.raises(ServerError) as excinfo:
        client.health()
    assert excinfo.value.status == 404
    assert stub_server.hits == 1


def test_retry_delay_is_bounded_and_jittered():
    client = CompileClient("http://127.0.0.1:1", retries=3,
                           backoff_s=0.1, max_backoff_s=0.25)
    delays = [client._retry_delay(attempt) for attempt in range(4)
              for _ in range(16)]
    assert all(0.05 <= delay <= 0.25 for delay in delays)
    assert len(set(delays)) > 1  # jitter actually varies
