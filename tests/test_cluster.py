"""Cluster layer: shard ring, health hysteresis, gateway proxy + failover.

The gateway tests run real :class:`~repro.server.http.CompileServer` shards
and a real :class:`~repro.cluster.gateway.ClusterGateway` on ephemeral ports
inside the test process, driven through the unchanged ``urllib``
:class:`~repro.server.client.CompileClient` — the full request path a
production client would take.  The process-level fleet (spawn + kill real
shard processes) is exercised in the slow lane.
"""

import threading
import time
from collections import Counter

import pytest

from repro.cluster import (ClusterGateway, HealthMonitor, LocalShardFleet,
                           ShardMember, ShardRing)
from repro.cluster.gateway import iter_samples
from repro.server import CompileClient, CompileServer, ServerError
from repro.service import make_job
from repro.service.jobs import PortfolioJob
from repro.workloads.generators import ghz

DEVICE = "ibm_q20_tokyo"


def _job(n: int = 3, router: str = "codar", **kwargs):
    return make_job(ghz(n), DEVICE, router, **kwargs)


# --------------------------------------------------------------------------- #
# ShardRing
# --------------------------------------------------------------------------- #
class TestShardRing:
    def test_member_coercion(self):
        ring = ShardRing(["http://a:1/", {"name": "b", "url": "http://b:2",
                                          "weight": 2.0},
                          ShardMember("c", "http://c:3")])
        assert [m.name for m in ring.members] == ["shard0", "b", "c"]
        assert ring.members[0].url == "http://a:1"  # trailing slash stripped
        assert ring.member("b").weight == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRing([])
        with pytest.raises(ValueError):
            ShardRing(["http://a:1"], mode="modulo")
        with pytest.raises(ValueError):
            ShardRing([ShardMember("x", "u"), ShardMember("x", "v")])
        with pytest.raises(ValueError):
            ShardMember("x", "u", weight=0)
        with pytest.raises(ValueError):
            ShardMember("", "u")
        with pytest.raises(KeyError):
            ShardRing(["http://a:1"]).member("nope")

    @pytest.mark.parametrize("mode", ShardRing.MODES)
    def test_preference_is_deterministic_and_complete(self, mode):
        ring = ShardRing([f"http://s{i}:80" for i in range(4)], mode=mode)
        for key in ("k1", "k2", "deadbeef" * 8):
            order = ring.preference(key)
            assert sorted(m.name for m in order) == sorted(
                m.name for m in ring.members)
            assert [m.name for m in ring.preference(key)] == [
                m.name for m in order]

    @pytest.mark.parametrize("mode", ShardRing.MODES)
    def test_owner_skips_dead_members(self, mode):
        ring = ShardRing(["http://a:1", "http://b:2"], mode=mode)
        key = "some-job-key"
        first = ring.owner(key)
        ring.eject(first.name)
        second = ring.owner(key)
        assert second is not first and second.alive
        ring.readmit(first.name)
        assert ring.owner(key) is first  # placement itself never moved

    def test_owner_when_every_member_is_dead(self):
        ring = ShardRing(["http://a:1", "http://b:2"])
        for member in ring.members:
            ring.eject(member.name)
        assert ring.owner("k") is ring.preference("k")[0]
        assert ring.alive_members() == []

    def test_rendezvous_removal_only_remaps_the_removed_member(self):
        keys = [f"job-{i}" for i in range(500)]
        big = ShardRing([f"http://s{i}:80" for i in range(3)])
        small = ShardRing([f"http://s{i}:80" for i in range(2)])
        removed = "shard2"
        for key in keys:
            before = big.owner(key).name
            after = small.owner(key).name
            if before != removed:
                assert after == before  # survivors keep every key they owned

    @pytest.mark.parametrize("mode", ShardRing.MODES)
    def test_weight_skews_ownership(self, mode):
        ring = ShardRing([{"name": "light", "url": "u1", "weight": 1.0},
                          {"name": "heavy", "url": "u2", "weight": 3.0}],
                         mode=mode)
        owners = Counter(ring.owner(f"k{i}").name for i in range(2000))
        assert owners["heavy"] > owners["light"] * 1.8

    def test_ring_mode_walks_distinct_members(self):
        ring = ShardRing([f"http://s{i}:80" for i in range(3)], mode="ring",
                         replicas=16)
        order = ring.preference("abc")
        assert len(order) == 3 and len({m.name for m in order}) == 3


# --------------------------------------------------------------------------- #
# HealthMonitor
# --------------------------------------------------------------------------- #
class TestHealthMonitor:
    def test_live_shard_stays_alive(self):
        with CompileServer(port=0, workers=1) as server:
            ring = ShardRing([server.url])
            monitor = HealthMonitor(ring, fail_threshold=1)
            assert monitor.probe_all() == {"shard0": True}
            assert monitor.ejections == 0

    def test_dead_shard_ejects_after_threshold_and_readmits(self):
        with CompileServer(port=0, workers=1) as server:
            live_url = server.url
        # The server is stopped: its port now refuses connections.
        ring = ShardRing([live_url])
        monitor = HealthMonitor(ring, timeout=0.5, fail_threshold=2,
                                ok_threshold=2)
        member = ring.members[0]
        assert monitor.probe(member) is True   # 1 failure < threshold
        assert monitor.probe(member) is False  # ejected
        assert monitor.ejections == 1
        with CompileServer(port=0, workers=1) as revived:
            member.url = revived.url  # "restart" on a fresh port
            assert monitor.probe(member) is False  # 1 success < ok_threshold
            assert monitor.probe(member) is True   # re-admitted
        assert monitor.readmissions == 1

    def test_report_failure_feeds_the_same_hysteresis(self):
        ring = ShardRing(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        monitor = HealthMonitor(ring, fail_threshold=2)
        member = ring.members[0]
        monitor.report_failure(member)
        assert member.alive
        monitor.report_failure(member)
        assert not member.alive
        snapshot = monitor.snapshot()
        assert snapshot[0]["alive"] is False
        assert snapshot[0]["consecutive_failures"] == 2
        assert snapshot[1]["alive"] is True

    def test_background_thread_ejects_unreachable_member(self):
        ring = ShardRing(["http://127.0.0.1:1"])
        monitor = HealthMonitor(ring, interval=0.05, timeout=0.2,
                                fail_threshold=2)
        monitor.start()
        try:
            deadline = time.monotonic() + 10.0
            while ring.members[0].alive:
                assert time.monotonic() < deadline, "member never ejected"
                time.sleep(0.02)  # sleep-ok: bounded poll of background health prober
        finally:
            monitor.stop()

    def test_invalid_thresholds(self):
        ring = ShardRing(["http://a:1"])
        with pytest.raises(ValueError):
            HealthMonitor(ring, fail_threshold=0)


# --------------------------------------------------------------------------- #
# Gateway: routing, proxying, aggregation
# --------------------------------------------------------------------------- #
@pytest.fixture()
def shards():
    with CompileServer(port=0, workers=2) as one:
        with CompileServer(port=0, workers=2) as two:
            yield [one, two]


@pytest.fixture()
def gateway(shards):
    with ClusterGateway([shard.url for shard in shards],
                        health_interval=0.2, probe_timeout=1.0) as instance:
        yield instance


@pytest.fixture()
def client(gateway):
    return CompileClient(gateway.url)


def _executed(shards) -> list[int]:
    return [shard.service.stats.executed for shard in shards]


class TestGateway:
    def test_compile_through_the_gateway(self, shards, client):
        outcome = client.compile(_job(3))
        assert outcome.ok and outcome.summary["circuit"] == "ghz_3"
        assert sum(_executed(shards)) == 1

    def test_distinct_jobs_spread_across_shards(self, shards, client):
        for seed in range(8):
            assert client.compile(_job(3, seed=seed), timeout=60.0).ok
        executed = _executed(shards)
        assert sum(executed) == 8
        assert all(count > 0 for count in executed), executed

    def test_duplicates_coalesce_on_a_single_shard(self, shards, gateway,
                                                   client):
        """The acceptance property: duplicate submissions of one key land on
        one shard and coalesce there — exactly one compilation cluster-wide."""
        for shard in shards:
            shard.scheduler.pause()
        time.sleep(0.2)  # sleep-ok: let in-pop workers settle behind the pause gate
        job, herd = _job(4), 6
        replies, errors = [], []
        lock = threading.Lock()

        def storm():
            try:
                reply = CompileClient(gateway.url).submit(job, wait=True,
                                                          timeout=60.0)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                with lock:
                    errors.append(exc)
                return
            with lock:
                replies.append(reply)

        threads = [threading.Thread(target=storm) for _ in range(herd)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while sum(s.metrics.counter("coalesced") for s in shards) < herd - 1:
            assert not errors, errors[:1]
            assert time.monotonic() < deadline, "submissions never coalesced"
            time.sleep(0.01)  # sleep-ok: bounded poll for cross-thread counter
        for shard in shards:
            shard.scheduler.resume()
        for thread in threads:
            thread.join(60.0)
        assert not errors, errors[:1]
        assert len(replies) == herd
        assert all(r["outcome"]["status"] == "ok" for r in replies)
        executed = _executed(shards)
        assert sum(executed) == 1, executed  # exactly one compilation
        submitted = [s.metrics.counter("submitted") for s in shards]
        coalesced = [s.metrics.counter("coalesced") for s in shards]
        assert sorted(submitted) == [0, 1]  # every duplicate hit one shard
        assert sum(coalesced) == herd - 1

    def test_status_and_result_proxy_to_the_owning_shard(self, client):
        job = _job(5)
        client.compile(job, timeout=60.0)
        record = client.status(job.key)
        assert record["status"] == "done" and record["key"] == job.key
        payload = client.result(job.key)
        assert payload["outcome"]["status"] == "ok"

    def test_unknown_key_is_404_after_trying_every_shard(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.status("f" * 64)
        assert excinfo.value.status == 404

    def test_get_finds_tickets_on_an_ejected_but_reachable_shard(
            self, gateway, client):
        # A briefly-ejected shard may still hold the ticket; a GET must
        # last-ditch it instead of answering a wrong 404.
        job = _job(6)
        client.compile(job, timeout=60.0)
        gateway.health_monitor.stop()  # keep the ejection from healing
        owner = gateway.ring.preference(job.key)[0]
        gateway.ring.eject(owner.name)
        record = client.status(job.key)
        assert record["status"] == "done" and record["key"] == job.key

    def test_malformed_job_is_rejected_at_the_edge(self, shards, gateway,
                                                   client):
        with pytest.raises(ServerError) as excinfo:
            client.submit({"qasm": "OPENQASM 2.0;"})  # missing device/router
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.submit({"qasm": "OPENQASM 2.0;", "device": DEVICE,
                           "router": "qiskit"})
        assert excinfo.value.status == 400
        assert gateway.metrics.snapshot()["bad_requests"] == 2
        # The shards never saw either request.
        assert all(s.metrics.counter("submitted") == 0 for s in shards)

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_portfolio_routes_through_the_gateway(self, shards, client):
        job = PortfolioJob.from_circuit(ghz(3), DEVICE,
                                        candidates=["codar", "sabre"])
        outcome = client.portfolio(job, timeout=120.0)
        assert outcome.ok and "portfolio" in outcome.summary
        assert sum(_executed(shards)) >= 1
        record = client.status(job.key)
        assert record["kind"] == "portfolio"

    def test_healthz_reports_shards(self, client):
        health = client.health()
        assert health["status"] == "ok" and health["role"] == "gateway"
        assert health["shards_alive"] == 2
        assert {shard["name"] for shard in health["shards"]} == {
            "shard0", "shard1"}

    def test_queue_full_passes_through_as_429(self, gateway):
        with CompileServer(port=0, workers=1, max_depth=1) as tiny:
            with ClusterGateway([tiny.url]) as front:
                tiny.scheduler.pause()
                time.sleep(0.2)  # sleep-ok: let in-pop workers settle behind the pause gate
                client = CompileClient(front.url, retries=0)
                client.submit(_job(3))
                with pytest.raises(ServerError) as excinfo:
                    client.submit(_job(4))
                assert excinfo.value.status == 429
                tiny.scheduler.resume()


class TestAggregatedMetrics:
    def test_iter_samples_parses_the_exposition_format(self):
        text = ("# HELP x y\n# TYPE x counter\nx 3\n"
                'h_bucket{le="0.5"} 2\nh_sum 0.7\nbad line\n')
        samples = dict(iter_samples(text))
        assert samples == {"x": 3.0, 'h_bucket{le="0.5"}': 2.0,
                           "h_sum": 0.7}

    def test_counters_and_histograms_merge_across_shards(self, shards,
                                                         client):
        for seed in range(6):
            assert client.compile(_job(3, seed=seed), timeout=60.0).ok
        samples = client.metrics()
        submitted = sum(s.metrics.counter("submitted") for s in shards)
        completed = sum(s.metrics.counter("completed") for s in shards)
        assert samples["repro_cluster_jobs_submitted_total"] == submitted == 6
        assert samples["repro_cluster_jobs_completed_total"] == completed == 6
        # Histograms merge by summing cumulative fixed-bucket counts.
        count = sum(s.metrics.service_seconds.count for s in shards)
        assert samples["repro_cluster_job_service_seconds_count"] == count
        merged_inf = samples['repro_cluster_job_service_seconds_bucket'
                             '{le="+Inf"}']
        assert merged_inf == count
        # p50/p95 are recomputed from the merged buckets, not summed.
        assert samples["repro_cluster_job_service_seconds_p95"] in (
            [0.0] + [b for b in shards[0].metrics.service_seconds.bounds])
        # Per-shard gateway counters are present.
        assert samples["repro_cluster_shards_alive"] == 2
        routed = [samples.get('repro_cluster_shard_requests_total'
                              f'{{shard="shard{i}"}}', 0) for i in range(2)]
        assert sum(routed) >= 6

    def test_metrics_survive_a_dead_shard(self, shards, gateway, client):
        assert client.compile(_job(3)).ok
        shards[1].stop(graceful=False)
        samples = client.metrics()
        assert samples["repro_cluster_shards_polled"] <= 2
        assert "repro_cluster_gateway_requests_total" in samples

    def test_merged_counters_never_regress_when_a_shard_dies(self, shards,
                                                             client):
        # Counter monotonicity across a shard outage: the dead shard's
        # last-known samples keep contributing, so Prometheus rate() never
        # sees a spurious counter reset.
        for seed in range(4):
            assert client.compile(_job(3, seed=seed), timeout=60.0).ok
        before = client.metrics()["repro_cluster_jobs_completed_total"]
        assert before == 4
        shards[0].stop(graceful=False)
        after = client.metrics()["repro_cluster_jobs_completed_total"]
        assert after >= before


# --------------------------------------------------------------------------- #
# Failover
# --------------------------------------------------------------------------- #
class TestFailover:
    def test_kill_one_shard_mid_run_all_waits_complete(self, shards, gateway):
        """The acceptance property: a shard dying mid-run is absorbed by
        failover — every client wait completes with an ok outcome."""
        jobs = [_job(3, "sabre", seed=seed) for seed in range(12)]
        outcomes, errors = [], []
        lock = threading.Lock()
        client = CompileClient(gateway.url, retries=3)

        def drive(job):
            try:
                outcome = client.compile(job, timeout=60.0)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                with lock:
                    errors.append(exc)
                return
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=drive, args=(job,))
                   for job in jobs]
        for thread in threads[:4]:
            thread.start()
        for thread in threads[:4]:
            thread.join(60.0)
        # Kill shard 0 mid-run (drain its in-flight work, then vanish), then
        # keep submitting: keys it owned must fail over to the survivor.
        shards[0].stop(graceful=True)
        for thread in threads[4:]:
            thread.start()
        for thread in threads[4:]:
            thread.join(60.0)
        assert not errors, errors[:1]
        assert len(outcomes) == len(jobs)
        assert all(outcome.ok for outcome in outcomes)
        # The survivor answered everything submitted after the kill.
        snapshot = gateway.metrics.snapshot()
        assert snapshot["failovers"] >= 1 or (
            shards[1].metrics.counter("submitted") == len(jobs))

    def test_dead_shard_is_ejected_then_skipped(self, shards, gateway,
                                                client):
        shards[0].stop(graceful=False)
        # Drive traffic until the hysteresis ejects the dead shard.
        deadline = time.monotonic() + 30.0
        while len(gateway.ring.alive_members()) == 2:
            assert time.monotonic() < deadline, "dead shard never ejected"
            assert client.compile(_job(3, seed=99), timeout=60.0).ok
            time.sleep(0.05)  # sleep-ok: bounded poll of failover ejection
        alive = gateway.ring.alive_members()
        assert [m.name for m in alive] == ["shard1"]
        health = client.health()
        assert health["shards_alive"] == 1 and health["ejections"] >= 1
        # Requests now route straight to the survivor with no failover cost.
        before = gateway.metrics.snapshot()["failovers"]
        assert client.compile(_job(4, seed=99), timeout=60.0).ok
        assert gateway.metrics.snapshot()["failovers"] == before

    def test_every_shard_down_is_503(self, shards, gateway):
        for shard in shards:
            shard.stop(graceful=False)
        client = CompileClient(gateway.url, retries=0)
        with pytest.raises(ServerError) as excinfo:
            client.submit(_job(3))
        assert excinfo.value.status == 503
        # The client's existing 503 retry loop would keep retrying; the
        # gateway itself stays healthy and reports the outage.
        health = client.health()
        assert health["status"] == "ok"


# --------------------------------------------------------------------------- #
# Process-level fleet (slow lane)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestLocalShardFleet:
    def test_fleet_spawns_serves_and_survives_a_process_kill(self):
        with LocalShardFleet(shards=2, workers=1) as fleet:
            assert len(fleet.urls) == 2 and fleet.alive() == [True, True]
            with ClusterGateway(fleet.urls, health_interval=0.2,
                                probe_timeout=1.0) as gateway:
                client = CompileClient(gateway.url, retries=3)
                for seed in range(4):
                    assert client.compile(_job(3, seed=seed),
                                          timeout=120.0).ok
                fleet.kill(0)  # SIGTERM an entire shard process
                assert fleet.alive() == [False, True]
                for seed in range(4, 8):
                    assert client.compile(_job(3, seed=seed),
                                          timeout=120.0).ok
                assert gateway.metrics.snapshot()["requests"] >= 8

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            LocalShardFleet(shards=0)
        with pytest.raises(ValueError):
            LocalShardFleet(shards=2, cache_dirs=["only-one"])


# --------------------------------------------------------------------------- #
# CLI: repro cluster serve / status (slow lane — subprocess boots)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestClusterCli:
    def test_cluster_serve_and_status(self):
        import os
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "cluster", "serve",
             "--shards", "2", "--port", "0"],
            stderr=subprocess.PIPE, text=True, env=env)
        try:
            url, lines = None, []
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = proc.stderr.readline()
                lines.append(line)
                match = re.search(r"gateway on (http://\S+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url, lines
            status = subprocess.run(
                [sys.executable, "-m", "repro.cli", "cluster", "status",
                 "--url", url],
                capture_output=True, text=True, env=env, timeout=60)
            assert status.returncode == 0, status.stderr
            assert "2/2 alive" in status.stdout
            assert "shard0" in status.stdout and "shard1" in status.stdout
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(30) == 0

    def test_cluster_status_against_a_dead_gateway(self):
        from repro.cli import main

        assert main(["cluster", "status",
                     "--url", "http://127.0.0.1:1"]) == 2
