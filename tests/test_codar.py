"""Unit and behavioural tests for the CODAR remapper."""

import pytest

from repro.arch.coupling import CouplingGraph
from repro.arch.devices import Device, get_device
from repro.arch.durations import GateDurationMap
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.mapping.codar.priority import SwapPriority, best_swap, swap_priority
from repro.mapping.codar.remapper import CodarConfig, CodarRouter
from repro.mapping.layout import Layout
from repro.mapping.verification import verify_routing

DUR = GateDurationMap(single=1, two=2, swap=6)


class TestSwapPriority:
    def _line_layout(self):
        return CouplingGraph.line(4), Layout.identity(4)

    def test_positive_when_swap_brings_operands_closer(self):
        coupling, layout = self._line_layout()
        gate = Gate("cx", (0, 3))
        priority = swap_priority(0, 1, coupling, layout, [gate])
        assert priority.basic == 1
        assert priority.is_positive

    def test_negative_when_swap_moves_operands_apart(self):
        coupling, layout = self._line_layout()
        gate = Gate("cx", (1, 2))
        priority = swap_priority(0, 1, coupling, layout, [gate])
        assert priority.basic == -1
        assert not priority.is_positive

    def test_untouched_gates_contribute_nothing(self):
        coupling, layout = self._line_layout()
        gate = Gate("cx", (2, 3))
        priority = swap_priority(0, 1, coupling, layout, [gate])
        assert priority.basic == 0

    def test_sums_over_all_target_gates(self):
        coupling, layout = self._line_layout()
        gates = [Gate("cx", (0, 3)), Gate("cx", (1, 3))]
        # SWAP(0,1): helps the first (+1) and hurts the second (-1).
        priority = swap_priority(0, 1, coupling, layout, gates)
        assert priority.basic == 0

    def test_fine_priority_balances_grid_distance(self):
        coupling = CouplingGraph.grid(3, 3)
        layout = Layout.identity(9)
        gate = Gate("cx", (0, 5))  # (0,0) -> (1,2): VD=1, HD=2
        swap_right = swap_priority(0, 1, coupling, layout, [gate])   # VD=1,HD=1
        swap_down = swap_priority(0, 3, coupling, layout, [gate])    # VD=0,HD=2
        assert swap_right.basic == swap_down.basic == 1
        assert swap_right.fine > swap_down.fine

    def test_fine_priority_disabled(self):
        coupling = CouplingGraph.grid(3, 3)
        layout = Layout.identity(9)
        gate = Gate("cx", (0, 5))
        priority = swap_priority(0, 1, coupling, layout, [gate], use_fine=False)
        assert priority.fine == 0.0

    def test_lookahead_is_only_a_tiebreak(self):
        assert SwapPriority(1, 0.0, -5.0) > SwapPriority(0, 0.0, 100.0)
        assert SwapPriority(1, 0.0, 2.0) > SwapPriority(1, 0.0, 1.0)

    def test_priority_ordering(self):
        assert SwapPriority(2, -1.0) > SwapPriority(1, 5.0)
        assert SwapPriority(1, 0.0) > SwapPriority(1, -1.0)

    def test_best_swap_selects_highest_priority(self):
        coupling, layout = self._line_layout()
        gate = Gate("cx", (0, 3))
        edge, priority = best_swap([(0, 1), (1, 2), (2, 3)], coupling, layout, [gate])
        assert priority.basic == 1
        assert edge in {(0, 1), (2, 3)}

    def test_best_swap_empty_candidates(self):
        coupling, layout = self._line_layout()
        assert best_swap([], coupling, layout, [Gate("cx", (0, 3))]) is None


def route(circuit, device=None, config=None, layout=None):
    device = device or get_device("grid", rows=2, cols=3)
    router = CodarRouter(config)
    return router.run(circuit, device, initial_layout=layout)


class TestCodarRouting:
    def test_already_compliant_circuit_untouched(self):
        circ = Circuit(2).h(0).cx(0, 1).t(1)
        result = route(circ, get_device("line", num_qubits=2))
        assert result.swap_count == 0
        assert [g.name for g in result.routed] == ["h", "cx", "t"]

    def test_distant_cnot_gets_swaps(self):
        circ = Circuit(4).cx(0, 3)
        result = route(circ, get_device("line", num_qubits=4),
                       layout=Layout.identity(4))
        assert result.swap_count >= 1
        verify_routing(result)

    def test_coupling_compliance_on_grid(self):
        from repro.workloads import qft
        result = route(qft(5), get_device("grid", rows=2, cols=3))
        verify_routing(result)

    def test_measurements_preserved(self):
        circ = Circuit(3).h(0).cx(0, 2).measure_all()
        result = route(circ, get_device("line", num_qubits=3))
        assert result.routed.count_ops()["measure"] == 3

    def test_barriers_dropped_by_router(self):
        circ = Circuit(2).h(0).barrier().cx(0, 1)
        result = route(circ, get_device("line", num_qubits=2))
        assert "barrier" not in result.routed.count_ops()

    def test_weighted_depth_reported_consistently(self):
        from repro.sim.scheduler import weighted_depth
        circ = Circuit(4).cx(0, 3).cx(1, 2)
        result = route(circ, get_device("line", num_qubits=4))
        assert result.weighted_depth == weighted_depth(result.routed,
                                                       result.device.durations)

    def test_inserted_swaps_are_tagged(self):
        circ = Circuit(4).cx(0, 3)
        result = route(circ, get_device("line", num_qubits=4),
                       layout=Layout.identity(4))
        assert all(g.is_routing_swap for g in result.routed if g.is_swap)

    def test_program_swaps_not_counted_as_insertions(self):
        circ = Circuit(2).swap(0, 1)
        result = route(circ, get_device("line", num_qubits=2))
        assert result.swap_count == 0
        assert result.routed.count_ops()["swap"] == 1

    def test_padding_qubits_usable_for_routing(self):
        # 3-qubit circuit on a 2x3 grid: CODAR may route through unused qubits.
        circ = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        result = route(circ, get_device("grid", rows=2, cols=3))
        verify_routing(result)

    def test_deterministic_output(self):
        from repro.workloads import qft
        circ = qft(5)
        device = get_device("ibm_q20_tokyo")
        layout = Layout.identity(20)
        first = CodarRouter().run(circ, device, initial_layout=layout)
        second = CodarRouter().run(circ, device, initial_layout=layout)
        assert first.routed == second.routed

    def test_final_layout_tracks_swaps(self):
        circ = Circuit(4).cx(0, 3)
        result = route(circ, get_device("line", num_qubits=4),
                       layout=Layout.identity(4))
        layout = result.initial_layout.copy()
        for gate in result.routed:
            if gate.is_routing_swap:
                layout.swap_physical(*gate.qubits)
        assert layout == result.final_layout

    def test_circuit_larger_than_device_rejected(self):
        with pytest.raises(ValueError, match="only has"):
            route(Circuit(10).h(0), get_device("line", num_qubits=4))

    def test_disconnected_device_raises(self):
        device = Device("broken", CouplingGraph(4, [(0, 1), (2, 3)]), DUR)
        with pytest.raises((RuntimeError, ValueError)):
            route(Circuit(4).cx(0, 3), device, layout=Layout.identity(4))

    def test_extra_metrics_recorded(self):
        circ = Circuit(4).cx(0, 3).cx(1, 2)
        result = route(circ, get_device("line", num_qubits=4))
        assert result.extra["cycles"] >= 1
        assert result.extra["final_time"] >= 0
        assert result.runtime_seconds >= 0


class TestCodarConfigurations:
    @pytest.mark.parametrize("config", [
        CodarConfig(use_commutativity=False),
        CodarConfig(use_fine_priority=False),
        CodarConfig(use_qubit_locks=False),
        CodarConfig(lookahead_size=0),
        CodarConfig(front_scan_limit=8, max_front_size=4),
    ])
    def test_ablated_variants_still_route_correctly(self, config):
        from repro.workloads import qft
        result = route(qft(5), get_device("grid", rows=2, cols=3), config=config)
        verify_routing(result)

    def test_duration_awareness_exploits_early_free_qubits(self):
        # The Fig. 2 scenario on the motivating device: CODAR should finish in
        # 9 cycles (SWAP starts at cycle 1 on the early-free qubit).
        from repro.experiments.motivating import (
            duration_example_circuit,
            example_device,
        )
        result = CodarRouter().run(duration_example_circuit(), example_device(),
                                   initial_layout=Layout.identity(4))
        assert result.weighted_depth == 9

    def test_context_awareness_avoids_busy_qubit(self):
        # The Fig. 1 scenario: the chosen SWAP must not touch the busy qubit Q2
        # and the whole fragment finishes in 8 cycles (T runs in parallel).
        from repro.experiments.motivating import (
            context_example_circuit,
            example_device,
        )
        result = CodarRouter().run(context_example_circuit(), example_device(),
                                   initial_layout=Layout.identity(4))
        swaps = [g for g in result.routed if g.is_routing_swap]
        assert len(swaps) == 1
        assert 2 not in swaps[0].qubits
        assert result.weighted_depth == 8
