"""Unit tests for commutation rules and Commutative-Front detection."""

import pytest

from repro.core.circuit import Circuit
from repro.core.commutativity import (
    CommutativityChecker,
    commutative_front,
    dependency_front,
    gates_commute,
)
from repro.core.gates import Gate
from repro.core.unitary import expand_to, gate_unitary, matrices_commute


def exact_commute(a: Gate, b: Gate) -> bool:
    """Ground truth via explicit matrices on the union of qubits."""
    union = sorted(set(a.qubits) | set(b.qubits))
    index = {q: i for i, q in enumerate(union)}
    ma = expand_to(gate_unitary(a), tuple(index[q] for q in a.qubits), len(union))
    mb = expand_to(gate_unitary(b), tuple(index[q] for q in b.qubits), len(union))
    return matrices_commute(ma, mb)


class TestPairwiseRules:
    def test_disjoint_gates_commute(self):
        assert gates_commute(Gate("h", (0,)), Gate("cx", (1, 2)))

    def test_diagonal_gates_commute(self):
        assert gates_commute(Gate("t", (0,)), Gate("rz", (0,), (0.3,)))
        assert gates_commute(Gate("cz", (0, 1)), Gate("cu1", (1, 2), (0.5,)))

    def test_cx_sharing_control_commute(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cx_sharing_target_commute(self):
        # The paper's Section IV-B example: CX q1,q3 and CX q2,q3 commute.
        assert gates_commute(Gate("cx", (1, 3)), Gate("cx", (2, 3)))

    def test_cx_control_vs_target_do_not_commute(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("cx", (1, 2)))

    def test_diagonal_on_cx_control_commutes(self):
        assert gates_commute(Gate("t", (0,)), Gate("cx", (0, 1)))

    def test_diagonal_on_cx_target_does_not_commute(self):
        assert not gates_commute(Gate("t", (1,)), Gate("cx", (0, 1)))

    def test_x_on_cx_target_commutes(self):
        assert gates_commute(Gate("x", (1,)), Gate("cx", (0, 1)))

    def test_x_on_cx_control_does_not_commute(self):
        assert not gates_commute(Gate("x", (0,)), Gate("cx", (0, 1)))

    def test_h_vs_cx_does_not_commute(self):
        assert not gates_commute(Gate("h", (0,)), Gate("cx", (0, 1)))

    def test_measure_never_commutes_on_shared_qubit(self):
        assert not gates_commute(Gate("measure", (0,)), Gate("t", (0,)))
        assert gates_commute(Gate("measure", (0,)), Gate("t", (1,)))

    def test_global_barrier_blocks_everything(self):
        assert not gates_commute(Gate("barrier", ()), Gate("h", (0,)))

    def test_scoped_barrier_blocks_only_its_qubits(self):
        assert not gates_commute(Gate("barrier", (0, 1)), Gate("h", (0,)))
        assert gates_commute(Gate("barrier", (0, 1)), Gate("h", (2,)))

    @pytest.mark.parametrize("a,b", [
        (Gate("cx", (0, 1)), Gate("cx", (0, 2))),
        (Gate("cx", (0, 2)), Gate("cx", (1, 2))),
        (Gate("cx", (0, 1)), Gate("cz", (0, 1))),
        (Gate("cz", (0, 1)), Gate("cz", (1, 2))),
        (Gate("rz", (1,), (0.4,)), Gate("cx", (1, 0))),
        (Gate("rx", (1,), (0.4,)), Gate("cx", (0, 1))),
        (Gate("s", (0,)), Gate("cu1", (0, 1), (0.3,))),
        (Gate("h", (1,)), Gate("cx", (0, 1))),
        (Gate("y", (1,)), Gate("cx", (0, 1))),
        (Gate("swap", (0, 1)), Gate("cx", (0, 1))),
    ])
    def test_rules_agree_with_exact_matrices(self, a, b):
        assert gates_commute(a, b) == exact_commute(a, b)

    def test_checker_caches_and_agrees(self):
        checker = CommutativityChecker()
        a, b = Gate("cx", (3, 7)), Gate("cx", (5, 7))
        assert checker.commute(a, b)
        assert checker.commute(a, b)  # served from cache
        assert checker.commute(Gate("cx", (0, 1)), Gate("cx", (2, 1)))


class TestCommutativeFront:
    def test_all_disjoint_gates_are_cf(self):
        circ = Circuit(4).h(0).h(1).cx(2, 3)
        assert commutative_front(circ.gates) == [0, 1, 2]

    def test_commuting_cx_chain_exposed(self):
        # CX(1,3); CX(2,3) share the target and commute: both are CF.
        circ = Circuit(4).cx(1, 3).cx(2, 3)
        assert commutative_front(circ.gates) == [0, 1]

    def test_non_commuting_successor_excluded(self):
        circ = Circuit(2).h(0).cx(0, 1)
        assert commutative_front(circ.gates) == [0]

    def test_qft_like_diagonal_ladder(self):
        circ = Circuit(3)
        circ.cu1(0.5, 1, 0)
        circ.cu1(0.25, 2, 0)
        circ.h(1)
        # Both cu1 are diagonal and commute; the H on qubit 1 does not commute
        # with the first cu1.
        assert commutative_front(circ.gates) == [0, 1]

    def test_max_front_truncates(self):
        circ = Circuit(8)
        for q in range(8):
            circ.h(q)
        assert commutative_front(circ.gates, max_front=3) == [0, 1, 2]

    def test_scan_limit_bounds_work(self):
        circ = Circuit(2)
        for _ in range(50):
            circ.t(0)
        front = commutative_front(circ.gates, scan_limit=10)
        assert front == list(range(10))

    def test_global_barrier_stops_the_front(self):
        circ = Circuit(2).h(0).barrier().h(1)
        assert commutative_front(circ.gates) == [0]

    def test_empty_sequence(self):
        assert commutative_front([]) == []

    def test_first_gate_always_cf(self):
        circ = Circuit(1).measure(0)
        assert commutative_front(circ.gates) == [0]


class TestDependencyFront:
    def test_plain_front_blocks_on_shared_qubits(self):
        circ = Circuit(4).cx(1, 3).cx(2, 3).h(0)
        # Gate 1 shares qubit 3 with gate 0, so only gates 0 and 2 are in the
        # dependency front even though gate 1 commutes.
        assert dependency_front(circ.gates) == [0, 2]

    def test_dependency_front_subset_of_cf(self):
        circ = Circuit(4).cx(0, 1).cx(0, 2).cx(1, 2).h(3)
        dep = set(dependency_front(circ.gates))
        cf = set(commutative_front(circ.gates))
        assert dep <= cf
