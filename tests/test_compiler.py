"""Tests for the staged pass-pipeline compiler (repro.compiler)."""

import json

import pytest

from repro.arch.devices import get_device
from repro.compiler import (DeviceAnalysis, Pipeline, analyze, cache_stats,
                            canonical_stage_specs, clear_cache,
                            list_pipelines, pipeline_preset, stage_spec)
from repro.core.circuit import Circuit
from repro.mapping.base import RoutingResult
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.layout import Layout
from repro.service.executor import CompilationService, execute_job
from repro.service.jobs import CompileJob
from repro.workloads.generators import ghz, qft


def _strip_volatile(summary: dict) -> dict:
    data = {k: v for k, v in summary.items()
            if k not in ("runtime_s", "wall_s")}
    if data.get("extra"):
        data["extra"] = {k: v for k, v in data["extra"].items()
                         if k != "stages"}
    return data


# --------------------------------------------------------------------------- #
# DeviceAnalysis cache
# --------------------------------------------------------------------------- #
class TestDeviceAnalysis:
    def setup_method(self):
        clear_cache()

    def test_analysis_contents(self):
        analysis = analyze(get_device("line", num_qubits=4))
        assert isinstance(analysis, DeviceAnalysis)
        assert analysis.num_qubits == 4
        assert analysis.connected
        assert analysis.diameter == 3
        assert analysis.neighbors[0] == (1,)
        assert analysis.neighbors[1] == (0, 2)
        assert analysis.degrees == (1, 2, 2, 1)
        assert analysis.duration_table["cx"] == 2
        assert analysis.distance[0, 3] == 3

    def test_second_analyze_is_a_cache_hit(self):
        analyze(get_device("ibm_q20_tokyo"))
        before = cache_stats()
        analysis = analyze(get_device("ibm_q20_tokyo"))
        after = cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert analysis.num_qubits == 20

    def test_distance_matrix_shared_across_fresh_device_builds(self):
        first = analyze(get_device("grid_6x6"))
        second = analyze(get_device("grid_6x6"))
        assert first.distance is second.distance

    def test_analyze_primes_the_coupling_memo(self):
        device = get_device("ibm_q16_melbourne")
        analysis = analyze(device)
        # The device's own distance calls now use the shared matrix.
        assert device.coupling.distance_matrix() is analysis.distance

    def test_devices_sharing_topology_share_the_distance_matrix(self):
        from repro.arch.durations import GateDurationMap, Technology

        stock = analyze(get_device("ibm_q20_tokyo"))
        ion = analyze(get_device(
            "ibm_q20_tokyo",
            durations=GateDurationMap.for_technology(Technology.ION_TRAP)))
        assert stock.fingerprint != ion.fingerprint
        assert stock.distance is ion.distance
        assert cache_stats()["distance_reuses"] >= 1

    def test_disconnected_device_detected(self):
        from repro.arch.coupling import CouplingGraph
        from repro.arch.devices import Device
        from repro.arch.durations import GateDurationMap

        device = Device("broken", CouplingGraph(4, [(0, 1), (2, 3)]),
                        GateDurationMap())
        assert not analyze(device).connected

    def test_clear_cache_resets_counters(self):
        analyze(get_device("line", num_qubits=3))
        clear_cache()
        stats = cache_stats()
        assert stats == {"hits": 0, "misses": 0, "distance_reuses": 0,
                         "evictions": 0}


# --------------------------------------------------------------------------- #
# Specs and keys
# --------------------------------------------------------------------------- #
class TestPipelineSpecs:
    def test_stage_spec_is_fully_explicit(self):
        assert stage_spec("optimize") == {"name": "optimize",
                                          "params": {"max_rounds": 4}}
        assert stage_spec({"name": "layout"})["params"] == {
            "strategy": "degree", "rounds": 1}

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError, match="unknown stage"):
            stage_spec("frobnicate")

    def test_presets_listed_and_buildable(self):
        presets = list_pipelines()
        assert set(presets) == {"default", "route_only", "ion_trap",
                                "directed"}
        for name in presets:
            pipeline = pipeline_preset(name)
            assert pipeline.name == name
            assert "route" in pipeline.stage_names

    def test_key_stable_across_equivalent_spec_shapes(self):
        compact = Pipeline.from_spec([
            "parse", "layout", {"name": "route", "params": {"router": "codar"}},
            "schedule"])
        explicit = pipeline_preset("route_only")
        assert compact.key == explicit.key

    def test_key_changes_with_any_stage_param(self):
        base = pipeline_preset("route_only")
        other_router = Pipeline.from_spec([
            "parse", "layout",
            {"name": "route", "params": {"router": "sabre"}}, "schedule"])
        other_layout = Pipeline.from_spec([
            "parse", {"name": "layout", "params": {"strategy": "identity"}},
            {"name": "route", "params": {"router": "codar"}}, "schedule"])
        fewer_stages = Pipeline.from_spec([
            "parse", "layout",
            {"name": "route", "params": {"router": "codar"}}])
        assert len({base.key, other_router.key, other_layout.key,
                    fewer_stages.key}) == 4

    def test_name_is_presentation_only(self):
        named = Pipeline.from_spec({"stages": ["parse", "layout",
                                               {"name": "route"}, "schedule"],
                                    "name": "mine"})
        assert named.key == pipeline_preset("route_only").key
        assert named.to_spec()["name"] == "mine"

    def test_canonical_stage_specs_round_trips_json(self):
        stages = canonical_stage_specs("default")
        rebuilt = Pipeline.from_spec({"stages": json.loads(json.dumps(stages))})
        assert rebuilt.key == pipeline_preset("default").key

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])

    def test_spec_without_stages_key_rejected(self):
        with pytest.raises(ValueError, match="stages"):
            Pipeline.from_spec({"name": "oops"})


# --------------------------------------------------------------------------- #
# Pipeline execution
# --------------------------------------------------------------------------- #
class TestPipelineRun:
    def test_route_only_matches_router_run(self):
        circ, device = qft(5), get_device("ibm_q20_tokyo")
        direct = CodarRouter().run(circ, device, layout_strategy="degree")
        piped = pipeline_preset("route_only").run(circ, device)
        assert piped.routing.swap_count == direct.swap_count
        assert piped.routing.weighted_depth == direct.weighted_depth
        assert piped.routing.initial_layout == direct.initial_layout
        assert piped.routing.routed == direct.routed

    def test_stage_timings_recorded_in_order(self):
        result = pipeline_preset("route_only").run(ghz(4),
                                                   get_device("grid_6x6"))
        names = [row["stage"] for row in result.stage_timings()]
        assert names == ["parse", "layout", "route", "schedule"]
        assert all(row["elapsed_s"] >= 0 for row in result.stage_timings())

    def test_schedule_stage_reuses_the_route_schedule(self):
        # route -> schedule with no transform in between: one ASAP pass.
        result = pipeline_preset("route_only").run(ghz(4),
                                                   get_device("grid_6x6"))
        assert result.schedule.makespan == result.routing.weighted_depth
        # A transforming stage in between forces a fresh schedule object.
        transformed = Pipeline.from_spec(
            ["parse", "layout", {"name": "route"},
             {"name": "decompose", "params": {"basis": "ibm"}},
             "schedule"]).run(ghz(4), get_device("grid_6x6"))
        assert transformed.schedule is not None
        assert transformed.summary()["weighted_depth"] == \
            transformed.schedule.makespan

    def test_timings_ride_on_routing_extra(self):
        result = pipeline_preset("route_only").run(ghz(4),
                                                   get_device("grid_6x6"))
        assert result.routing.extra["stages"] == result.stage_timings()

    def test_qasm_text_input_is_parsed(self):
        from repro.qasm.exporter import circuit_to_qasm

        qasm = circuit_to_qasm(ghz(3))
        result = pipeline_preset("default").run(qasm,
                                                get_device("line",
                                                           num_qubits=3),
                                                circuit_name="mine")
        assert result.routing.original.name == "mine"
        assert result.verified

    def test_explicit_layout_recorded(self):
        layout = Layout.identity(20)
        result = pipeline_preset("route_only").run(
            qft(4), get_device("ibm_q20_tokyo"), layout=layout)
        assert result.routing.layout_strategy == "explicit"
        assert result.routing.initial_layout == layout

    def test_routeless_pipeline_skips_device_analysis(self):
        clear_cache()
        Pipeline.from_spec(["parse", "optimize"]).run(
            ghz(3), get_device("line", num_qubits=3))
        assert cache_stats()["misses"] == 0

    def test_routeless_pipeline_summary(self):
        pipeline = Pipeline.from_spec(["parse", "optimize", "schedule"])
        circ = Circuit(2).h(0).h(0).cx(0, 1)
        result = pipeline.run(circ, get_device("line", num_qubits=2))
        summary = result.summary()
        assert summary["router"] is None
        assert summary["routed_gates"] == 1
        assert [row["stage"] for row in summary["stages"]] == [
            "parse", "optimize", "schedule"]
        assert summary["pipeline_key"] == pipeline.key

    def test_verify_stage_needs_route(self):
        with pytest.raises(ValueError, match="route"):
            Pipeline.from_spec(["parse", "verify"]).run(
                ghz(3), get_device("line", num_qubits=3))

    def test_router_run_shim_records_stage_timings(self):
        result = CodarRouter().run(qft(4), get_device("ibm_q20_tokyo"))
        assert [row["stage"] for row in result.extra["stages"]] == [
            "layout", "route"]

    def test_seed_threads_through_random_layout(self):
        pipeline = Pipeline.from_spec([
            "parse", {"name": "layout", "params": {"strategy": "random"}},
            {"name": "route"}, "schedule"])
        device = get_device("ibm_q20_tokyo")
        first = pipeline.run(qft(4), device, seed=7)
        second = pipeline.run(qft(4), device, seed=7)
        third = pipeline.run(qft(4), device, seed=8)
        assert first.routing.initial_layout == second.routing.initial_layout
        assert first.routing.seed == 7
        assert (first.routing.initial_layout != third.routing.initial_layout
                or first.routing.routed == third.routing.routed)


# --------------------------------------------------------------------------- #
# RoutingResult summary round-trip (the extra-dict bugfix)
# --------------------------------------------------------------------------- #
class TestSummaryRoundTrip:
    def test_extra_and_stage_timings_round_trip_losslessly(self):
        result = CodarRouter().run(qft(4), get_device("ibm_q20_tokyo"),
                                   seed=3)
        result.extra["custom"] = {"nested": [1, 2, {"deep": True}]}
        summary = result.summary(include_circuits=True)
        rebuilt = RoutingResult.from_summary(
            json.loads(json.dumps(summary)))
        assert rebuilt.extra == result.extra
        assert rebuilt.extra["stages"] == result.extra["stages"]
        assert rebuilt.extra["custom"] == {"nested": [1, 2, {"deep": True}]}
        assert rebuilt.swap_count == result.swap_count
        assert rebuilt.seed == result.seed

    def test_summary_without_extra_key_still_loads(self):
        # Pre-pipeline summaries (no "extra" key) must stay readable.
        result = CodarRouter().run(ghz(3), get_device("line", num_qubits=3))
        summary = result.summary(include_circuits=True)
        summary.pop("extra")
        rebuilt = RoutingResult.from_summary(summary)
        assert rebuilt.extra == {}


# --------------------------------------------------------------------------- #
# Service integration
# --------------------------------------------------------------------------- #
class TestPipelineJobs:
    def test_pipeline_joins_the_job_key(self):
        circ = qft(4)
        plain = CompileJob.from_circuit(circ, "ibm_q20_tokyo")
        preset = CompileJob.from_circuit(circ, "ibm_q20_tokyo",
                                         pipeline="route_only")
        tweaked = CompileJob.from_circuit(
            circ, "ibm_q20_tokyo",
            pipeline=["parse", "layout",
                      {"name": "route", "params": {"router": "sabre"}},
                      "schedule"])
        assert len({plain.key, preset.key, tweaked.key}) == 3

    def test_vestigial_router_field_does_not_fragment_pipeline_keys(self):
        # Execution ignores router/layout_strategy when a pipeline is set,
        # so they must not split the cache or defeat coalescing either.
        circ = qft(4)
        codar = CompileJob.from_circuit(circ, "ibm_q20_tokyo", "codar",
                                        pipeline="route_only")
        sabre = CompileJob.from_circuit(circ, "ibm_q20_tokyo", "sabre",
                                        layout_strategy="identity",
                                        pipeline="route_only")
        assert codar.key == sabre.key

    def test_equivalent_pipeline_specs_share_a_key(self):
        circ = qft(4)
        by_name = CompileJob.from_circuit(circ, "ibm_q20_tokyo",
                                          pipeline="route_only")
        by_list = CompileJob.from_circuit(
            circ, "ibm_q20_tokyo",
            pipeline=canonical_stage_specs("route_only"))
        assert by_name.key == by_list.key

    def test_job_dict_round_trip(self):
        job = CompileJob.from_circuit(qft(3), "ibm_q20_tokyo",
                                      pipeline="default")
        rebuilt = CompileJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert rebuilt.key == job.key
        assert rebuilt.pipeline == job.pipeline

    def test_execute_pipeline_job(self):
        job = CompileJob.from_circuit(qft(4), "ibm_q20_tokyo",
                                      pipeline="default")
        outcome = execute_job(job)
        assert outcome.ok
        assert outcome.summary["router"] == "codar"
        assert outcome.summary["verified"] is True
        assert outcome.summary["pipeline_key"] == \
            pipeline_preset("default").key
        stages = outcome.summary["extra"]["stages"]
        assert [row["stage"] for row in stages] == [
            "parse", "optimize", "layout", "route", "optimize", "schedule",
            "verify"]
        from repro.qasm.parser import parse_qasm

        assert parse_qasm(outcome.routed_qasm).num_qubits == 20

    def test_pipeline_job_is_deterministic(self):
        job = CompileJob.from_circuit(qft(4), "ibm_q20_tokyo",
                                      pipeline="default")
        first, second = execute_job(job), execute_job(job)
        assert first.routed_qasm == second.routed_qasm
        assert _strip_volatile(first.summary) == _strip_volatile(second.summary)

    def test_pipeline_job_cached_and_replayed(self, tmp_path):
        from repro.service.cache import ResultCache

        cache = ResultCache(tmp_path)
        service = CompilationService(cache=cache)
        job = CompileJob.from_circuit(qft(4), "ibm_q20_tokyo",
                                      pipeline="route_only")
        cold = service.compile_one(job)
        warm = service.compile_one(job)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.to_json() == warm.to_json()

    def test_routeless_pipeline_job(self):
        job = CompileJob.from_circuit(
            Circuit(2, name="pair").h(0).h(0).cx(0, 1), "line_2",
            pipeline=["parse", "optimize", "schedule"])
        outcome = execute_job(job)
        assert outcome.ok
        assert outcome.summary["router"] is None
        assert outcome.summary["routed_gates"] == 1

    def test_bad_stage_spec_fails_job_construction(self):
        with pytest.raises(KeyError, match="unknown stage"):
            CompileJob.from_circuit(qft(3), "ibm_q20_tokyo",
                                    pipeline=["warp_drive"])

    def test_pipeline_payload_may_omit_router_but_plain_may_not(self):
        from repro.qasm.exporter import circuit_to_qasm

        qasm = circuit_to_qasm(qft(3))
        job = CompileJob.from_dict({"qasm": qasm, "device": "ibm_q20_tokyo",
                                    "pipeline": "route_only"})
        assert job.pipeline is not None
        with pytest.raises(KeyError):
            # A typo'd plain payload must keep failing loudly (HTTP 400),
            # not silently compile with a default router.
            CompileJob.from_dict({"qasm": qasm, "device": "ibm_q20_tokyo",
                                  "roter": "sabre"})


# --------------------------------------------------------------------------- #
# Portfolio integration
# --------------------------------------------------------------------------- #
class TestPipelineCandidates:
    def test_candidate_pipeline_joins_the_key(self):
        from repro.portfolio.candidates import Candidate

        plain = Candidate("codar")
        piped = Candidate(pipeline="route_only")
        tweaked = Candidate(pipeline="default")
        assert len({plain.key, piped.key, tweaked.key}) == 3

    def test_candidate_pipeline_round_trips(self):
        from repro.portfolio.candidates import Candidate

        candidate = Candidate(pipeline="route_only")
        rebuilt = Candidate.from_dict(
            json.loads(json.dumps(candidate.to_dict())))
        assert rebuilt.key == candidate.key
        assert rebuilt.pipeline == candidate.pipeline

    def test_candidate_router_mirrors_route_stage(self):
        from repro.portfolio.candidates import Candidate

        candidate = Candidate(pipeline=[
            "parse", "layout",
            {"name": "route", "params": {"router": "sabre"}}, "schedule"])
        assert candidate.router["name"] == "sabre"
        assert candidate.label.startswith("pipeline:")

    def test_vestigial_layout_strategy_does_not_split_candidate_keys(self):
        from repro.portfolio.candidates import Candidate

        assert (Candidate(pipeline="route_only").key
                == Candidate(pipeline="route_only",
                             layout_strategy="identity").key)

    def test_routeless_candidate_pipeline_rejected(self):
        from repro.portfolio.candidates import Candidate

        with pytest.raises(ValueError, match="needs a 'route' stage"):
            Candidate(pipeline=["parse", "optimize", "schedule"])

    def test_candidate_job_carries_the_pipeline(self):
        from repro.portfolio.candidates import Candidate
        from repro.qasm.exporter import circuit_to_qasm

        candidate = Candidate(pipeline="route_only")
        job = candidate.job_for(circuit_to_qasm(qft(3)), "ibm_q20_tokyo")
        assert job.pipeline == candidate.pipeline
        outcome = execute_job(job)
        assert outcome.ok

    def test_portfolio_races_pipeline_candidates(self):
        from repro.portfolio import PortfolioRunner
        from repro.portfolio.candidates import Candidate

        runner = PortfolioRunner("weighted_depth")
        result = runner.run(qft(4), "ibm_q20_tokyo",
                            candidates=[Candidate("sabre"),
                                        Candidate(pipeline="route_only")],
                            seed=5)
        assert result.ok
        labels = {row["label"]
                  for row in result.portfolio_summary()["candidates"]}
        assert any(label.startswith("pipeline:") for label in labels)


# --------------------------------------------------------------------------- #
# Server metrics
# --------------------------------------------------------------------------- #
class TestStageMetrics:
    def test_observe_stages_accumulates(self):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.observe_stages([{"stage": "route", "elapsed_s": 0.25},
                                {"stage": "layout", "elapsed_s": 0.5}])
        metrics.observe_stages([{"stage": "route", "elapsed_s": 0.75}])
        timings = metrics.stage_timings()
        assert timings["route"] == {"runs": 2, "seconds": 1.0}
        assert timings["layout"] == {"runs": 1, "seconds": 0.5}
        assert metrics.snapshot()["stages"]["route"]["runs"] == 2

    def test_prometheus_exposition_includes_stage_counters(self):
        from repro.server.metrics import ServerMetrics

        metrics = ServerMetrics()
        metrics.observe_stages([{"stage": "route", "elapsed_s": 0.25}])
        text = metrics.to_prometheus()
        assert 'repro_server_stage_seconds_total{stage="route"} 0.25' in text
        assert 'repro_server_stage_runs_total{stage="route"} 1' in text
