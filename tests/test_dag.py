"""Unit tests for the circuit dependency DAG."""


from repro.core.circuit import Circuit
from repro.core.dag import CircuitDag


class TestDagStructure:
    def test_empty_circuit(self):
        dag = CircuitDag(Circuit(2))
        assert dag.num_gates == 0
        assert dag.front_layer() == []
        assert dag.depth() == 0

    def test_serial_chain(self):
        circ = Circuit(1).h(0).t(0).h(0)
        dag = CircuitDag(circ)
        assert dag.front_layer() == [0]
        assert dag.predecessors[2] == [1]
        assert dag.successors[0] == [1]
        assert dag.depth() == 3

    def test_parallel_gates(self):
        circ = Circuit(3).h(0).h(1).h(2)
        dag = CircuitDag(circ)
        assert dag.front_layer() == [0, 1, 2]
        assert dag.depth() == 1

    def test_two_qubit_dependencies(self):
        circ = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 2)
        dag = CircuitDag(circ)
        assert dag.predecessors[1] == [0]
        assert sorted(dag.predecessors[2]) == [0, 1]

    def test_only_immediate_predecessors_recorded(self):
        circ = Circuit(1).h(0).t(0).s(0)
        dag = CircuitDag(circ)
        assert dag.predecessors[2] == [1]  # not [0, 1]

    def test_bare_barrier_depends_on_touched_qubits(self):
        circ = Circuit(3).h(0).h(1)
        circ.barrier()
        circ.h(2)
        dag = CircuitDag(circ)
        assert sorted(dag.predecessors[2]) == [0, 1]

    def test_topological_order_is_valid(self):
        circ = Circuit(3).cx(0, 1).h(2).cx(1, 2).t(0)
        dag = CircuitDag(circ)
        order = list(dag.topological_order())
        assert sorted(order) == list(range(4))
        position = {gate: i for i, gate in enumerate(order)}
        for gate_index in range(4):
            for pred in dag.predecessors[gate_index]:
                assert position[pred] < position[gate_index]

    def test_layers_match_depth(self):
        circ = Circuit(3).h(0).cx(0, 1).cx(1, 2).h(0)
        dag = CircuitDag(circ)
        layers = dag.layers()
        assert len(layers) == dag.depth()
        assert sum(len(layer) for layer in layers) == len(circ)

    def test_layers_respect_dependencies(self):
        circ = Circuit(2).h(0).cx(0, 1).t(1)
        dag = CircuitDag(circ)
        assert dag.layers() == [[0], [1], [2]]

    def test_two_qubit_interactions(self):
        circ = Circuit(3).h(0).cx(0, 1).swap(1, 2)
        dag = CircuitDag(circ)
        assert dag.two_qubit_interactions() == [(0, 1), (1, 2)]

    def test_gate_accessor(self):
        circ = Circuit(2).h(1)
        dag = CircuitDag(circ)
        assert dag.gate(0).name == "h"
        assert dag.gate(0).qubits == (1,)
