"""Tests for directed coupling maps and the CX orientation pass."""

import numpy as np
import pytest

from repro.arch.coupling import CouplingGraph
from repro.arch.devices import get_device
from repro.arch.directed import DirectedCouplingGraph
from repro.core.circuit import Circuit
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.verification import verify_routing
from repro.passes.orientation import count_reversals, orient_cx
from repro.sim.statevector import StatevectorSimulator
from repro.workloads import generators as gen


def _states_equal_up_to_phase(a: np.ndarray, b: np.ndarray) -> bool:
    return abs(abs(np.vdot(a, b)) - 1.0) < 1e-9


# --------------------------------------------------------------------------- #
# DirectedCouplingGraph
# --------------------------------------------------------------------------- #
class TestDirectedCouplingGraph:
    def test_allows_and_adjacency(self):
        directed = DirectedCouplingGraph(3, [(0, 1), (2, 1)])
        assert directed.allows(0, 1) and not directed.allows(1, 0)
        assert directed.are_adjacent(1, 0)
        assert not directed.are_adjacent(0, 2)

    def test_needs_reversal(self):
        directed = DirectedCouplingGraph(3, [(0, 1), (1, 2), (2, 1)])
        assert not directed.needs_reversal(0, 1)
        assert directed.needs_reversal(1, 0)
        assert not directed.needs_reversal(1, 2)
        assert not directed.needs_reversal(2, 1)
        with pytest.raises(ValueError):
            directed.needs_reversal(0, 2)

    def test_rejects_self_loops_and_empty(self):
        with pytest.raises(ValueError):
            DirectedCouplingGraph(2, [(0, 0)])
        with pytest.raises(ValueError):
            DirectedCouplingGraph(2, [])

    def test_symmetric_fraction(self):
        one_way = DirectedCouplingGraph(3, [(0, 1), (1, 2)])
        both_ways = DirectedCouplingGraph(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        assert one_way.symmetric_fraction() == 0.0
        assert both_ways.symmetric_fraction() == 1.0

    def test_qx4_topology(self):
        qx4 = DirectedCouplingGraph.ibm_qx4()
        assert qx4.num_qubits == 5
        assert qx4.undirected.num_edges == 6
        assert qx4.symmetric_fraction() == 0.0
        assert qx4.undirected.is_connected()

    def test_qx5_topology(self):
        qx5 = DirectedCouplingGraph.ibm_qx5()
        assert qx5.num_qubits == 16
        assert qx5.undirected.num_edges == 22
        assert qx5.undirected.is_connected()

    def test_fully_symmetric_wrapper(self):
        grid = CouplingGraph.grid(2, 3)
        directed = DirectedCouplingGraph.fully_symmetric(grid)
        assert directed.symmetric_fraction() == 1.0
        assert directed.undirected.edges == grid.edges


# --------------------------------------------------------------------------- #
# Orientation pass
# --------------------------------------------------------------------------- #
class TestOrientCx:
    def test_native_direction_untouched(self):
        directed = DirectedCouplingGraph(2, [(0, 1)])
        circuit = Circuit(2).h(0).cx(0, 1)
        oriented = orient_cx(circuit, directed)
        assert oriented.gates == circuit.gates

    def test_reversed_cx_uses_four_hadamards(self):
        directed = DirectedCouplingGraph(2, [(0, 1)])
        circuit = Circuit(2).cx(1, 0)
        oriented = orient_cx(circuit, directed)
        ops = oriented.count_ops()
        assert ops["h"] == 4 and ops["cx"] == 1
        cx = next(g for g in oriented.gates if g.name == "cx")
        assert cx.qubits == (0, 1)

    def test_reversal_preserves_semantics(self):
        directed = DirectedCouplingGraph(2, [(0, 1)])
        circuit = Circuit(2).h(0).h(1).cx(1, 0).t(0)
        oriented = orient_cx(circuit, directed)
        sim = StatevectorSimulator()
        assert _states_equal_up_to_phase(sim.run(circuit), sim.run(oriented))

    def test_swap_expansion_and_orientation(self):
        directed = DirectedCouplingGraph(2, [(0, 1)])
        circuit = Circuit(2).x(0).swap(0, 1)
        oriented = orient_cx(circuit, directed)
        assert "swap" not in oriented.count_ops()
        for gate in oriented.gates:
            if gate.name == "cx":
                assert directed.allows(*gate.qubits)
        sim = StatevectorSimulator()
        assert _states_equal_up_to_phase(sim.run(circuit), sim.run(oriented))

    def test_symmetric_gates_pass_through(self):
        directed = DirectedCouplingGraph(2, [(0, 1)])
        circuit = Circuit(2).cz(1, 0)
        oriented = orient_cx(circuit, directed)
        assert oriented.count_ops()["cz"] == 1

    def test_controlled_phase_is_lowered_then_oriented(self):
        directed = DirectedCouplingGraph(2, [(0, 1)])
        circuit = Circuit(2).h(0).h(1).cu1(0.7, 1, 0)
        oriented = orient_cx(circuit, directed)
        for gate in oriented.gates:
            if gate.name == "cx":
                assert directed.allows(*gate.qubits)
        sim = StatevectorSimulator()
        assert _states_equal_up_to_phase(sim.run(circuit), sim.run(oriented))

    def test_noncompliant_input_is_rejected(self):
        directed = DirectedCouplingGraph(3, [(0, 1), (1, 2)])
        circuit = Circuit(3).cx(0, 2)
        with pytest.raises(ValueError):
            orient_cx(circuit, directed)

    def test_count_reversals(self):
        directed = DirectedCouplingGraph(2, [(0, 1)])
        circuit = Circuit(2).cx(0, 1).cx(1, 0).swap(0, 1)
        # cx(0,1): 0; cx(1,0): 1; swap: CX(0,1) CX(1,0) CX(0,1) -> 1 reversal.
        assert count_reversals(circuit, directed) == 2


# --------------------------------------------------------------------------- #
# End to end on the directed device models
# --------------------------------------------------------------------------- #
class TestDirectedDevices:
    @pytest.mark.parametrize("device_name", ["ibm_qx4", "ibm_qx5"])
    def test_registry_exposes_directed_devices(self, device_name):
        device = get_device(device_name)
        assert device.has_directed_coupling
        assert device.directed.num_qubits == device.num_qubits

    def test_route_then_orient_on_qx4(self):
        device = get_device("ibm_qx4")
        circuit = gen.qft(4)
        result = CodarRouter().run(circuit, device)
        verify_routing(result)
        oriented = orient_cx(result.routed, device.directed)
        for gate in oriented.gates:
            if gate.name == "cx":
                assert device.directed.allows(*gate.qubits)
            elif gate.num_qubits == 2 and not gate.is_barrier:
                assert device.directed.are_adjacent(*gate.qubits)

    def test_route_then_orient_on_qx5(self):
        device = get_device("ibm_qx5")
        circuit = gen.bernstein_vazirani(9)
        result = CodarRouter().run(circuit, device)
        verify_routing(result)
        oriented = orient_cx(result.routed, device.directed)
        assert all(device.directed.allows(*g.qubits)
                   for g in oriented.gates if g.name == "cx")

    def test_orientation_overhead_is_bounded(self):
        """Each reversed CX costs exactly four extra Hadamards."""
        device = get_device("ibm_qx4")
        result = CodarRouter().run(gen.ghz(5), device)
        routed_cx_only = orient_cx(result.routed, device.directed,
                                   lower_to_cx_basis=True)
        reversals = count_reversals(result.routed, device.directed)
        baseline_h = sum(1 for g in result.routed.gates if g.name == "h")
        oriented_h = routed_cx_only.count_ops().get("h", 0)
        assert oriented_h == baseline_h + 4 * reversals
