"""Tests for the experiment harnesses (Table I, Fig. 1/2, Fig. 8, Fig. 9, ablation)."""


import pytest

from repro.arch.devices import get_device
from repro.experiments.ablation import AblationExperiment
from repro.experiments.device_table import (
    device_table,
    duration_ratio_of,
    report as device_report,
    technology_duration_maps,
)
from repro.experiments.fidelity import FidelityExperiment
from repro.experiments.motivating import (
    motivating_context_example,
    motivating_duration_example,
)
from repro.experiments.reporting import arithmetic_mean, format_table, geometric_mean
from repro.experiments.speedup import SpeedupExperiment
from repro.workloads import ghz, qft


class TestReportingHelpers:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_handles_none_and_floats(self):
        text = format_table([{"v": None, "f": 1.23456}])
        assert "-" in text and "1.235" in text

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestDeviceTable:
    def test_six_rows(self):
        assert len(device_table()) == 6

    def test_report_mentions_all_devices(self):
        text = device_report()
        for name in ("Ion Q5", "IBM Q16", "IBM Q20", "Neutral Atom"):
            assert name in text

    def test_superconducting_ratio_at_least_two(self):
        assert duration_ratio_of("ibm_q5") >= 2.0

    def test_technology_maps(self):
        maps = technology_duration_maps()
        assert maps["superconducting"].two == 2
        assert maps["ion_trap"].two > maps["ion_trap"].single
        assert maps["neutral_atom"].two <= maps["neutral_atom"].single


class TestMotivatingExamples:
    def test_fig1_context_awareness(self):
        result = motivating_context_example()
        # The paper's analysis: SWAP runs in parallel with the T gate, so the
        # fragment completes in SWAP(6) + CX(2) = 8 cycles.
        assert result.codar_weighted_depth == 8
        assert result.codar_weighted_depth <= result.sabre_weighted_depth
        assert result.speedup >= 1.0

    def test_fig2_duration_awareness(self):
        result = motivating_duration_example()
        # CODAR starts the SWAP at cycle 1 (after the T) instead of cycle 2:
        # 1 + 6 + 2 = 9 cycles, one cycle faster than the duration-blind 10.
        assert result.codar_weighted_depth == 9
        assert result.sabre_weighted_depth == 10
        assert result.speedup > 1.0


class TestSpeedupExperiment:
    def test_single_record_fields(self):
        exp = SpeedupExperiment(architectures=["ibm_q20_tokyo"])
        record = exp.run_single(qft(5), get_device("ibm_q20_tokyo"))
        assert record.benchmark == "qft_5"
        assert record.codar_weighted_depth > 0
        assert record.sabre_weighted_depth > 0
        assert record.speedup > 0
        assert set(record.as_row()) >= {"benchmark", "speedup", "codar_wd", "sabre_wd"}

    def test_cases_respect_device_capacity(self):
        exp = SpeedupExperiment()
        q16 = get_device("ibm_q16_melbourne")
        assert all(c.num_qubits <= 16 for c in exp.cases_for(q16))
        sycamore = get_device("google_sycamore54")
        assert len(exp.cases_for(sycamore)) == 71

    def test_size_filters(self):
        exp = SpeedupExperiment(max_benchmark_qubits=5, max_benchmark_gates=100)
        cases = exp.cases_for(get_device("ibm_q20_tokyo"))
        assert all(c.num_qubits <= 5 for c in cases)
        assert all(len(c.build()) <= 100 for c in cases)

    def test_small_sweep_produces_summary(self):
        exp = SpeedupExperiment(architectures=["ibm_q20_tokyo"],
                                max_benchmark_qubits=5, max_benchmark_gates=120)
        summaries = exp.run()
        summary = summaries["ibm_q20_tokyo"]
        assert len(summary.records) > 3
        assert summary.average_speedup > 0.8
        assert 0 <= summary.wins <= len(summary.records)
        report = SpeedupExperiment.report(summaries, detailed=True)
        assert "average_speedup" in report

    def test_progress_callback_invoked(self):
        seen = []
        exp = SpeedupExperiment(architectures=["ibm_q20_tokyo"],
                                max_benchmark_qubits=4, max_benchmark_gates=60)
        exp.run_architecture("ibm_q20_tokyo", progress=seen.append)
        assert seen and all("ibm_q20_tokyo" in msg for msg in seen)


class TestFidelityExperiment:
    @pytest.fixture(scope="class")
    def records(self):
        circuits = [ghz(4, name="ghz_4q"), qft(4, name="qft_4q")]
        return FidelityExperiment(circuits=circuits).run()

    def test_runs_both_regimes(self, records):
        assert {r.regime for r in records} == {"dephasing", "damping"}
        assert len(records) == 4

    def test_fidelities_are_probabilities(self, records):
        for record in records:
            assert 0.0 <= record.codar_fidelity <= 1.0 + 1e-9
            assert 0.0 <= record.sabre_fidelity <= 1.0 + 1e-9

    def test_codar_not_much_worse_than_sabre(self, records):
        # The Fig. 9 claim: CODAR maintains fidelity (allow small tolerance).
        for record in records:
            assert record.codar_fidelity >= record.sabre_fidelity - 0.05

    def test_report_renders(self, records):
        text = FidelityExperiment.report(records)
        assert "dephasing" in text and "damping" in text


class TestAblationExperiment:
    def test_small_ablation_run(self):
        exp = AblationExperiment(device=get_device("ibm_q20_tokyo"),
                                 max_qubits=5, max_gates=80)
        records = exp.run()
        variants = {r.variant for r in records}
        assert variants == {"full", "no_locks", "no_commutativity",
                            "no_fine_priority", "uniform_durations"}
        full = [r for r in records if r.variant == "full"]
        assert all(r.slowdown == 1.0 for r in full)
        report = AblationExperiment.report(records)
        assert "average_slowdown_vs_full" in report
