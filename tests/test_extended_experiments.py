"""Tests for the extended experiment harnesses.

Covers the duration-sensitivity sweep, the runtime-scaling study, the
initial-mapping sensitivity study and the cross-router baseline comparison.
All runs use tiny configurations so the whole module stays fast; the full
sweeps live in ``benchmarks/``.
"""

import pytest

from repro.arch.devices import get_device
from repro.experiments.baselines import (BaselineComparisonExperiment,
                                         default_routers)
from repro.experiments.layouts import LayoutSensitivityExperiment
from repro.experiments.scaling import RuntimeScalingExperiment
from repro.experiments.sensitivity import DurationSensitivityExperiment
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.sabre.remapper import SabreRouter


# --------------------------------------------------------------------------- #
# Duration sensitivity (maQAM multi-technology question)
# --------------------------------------------------------------------------- #
class TestDurationSensitivity:
    @pytest.fixture(scope="class")
    def experiment(self):
        return DurationSensitivityExperiment(max_qubits=5, max_gates=100,
                                             two_qubit_ratios=(1, 2, 8),
                                             swap_ratios=(3,))

    def test_duration_map_ratios(self, experiment):
        durations = experiment.duration_map(4, 3)
        assert durations.single == 1
        assert durations.two == 4
        assert durations.swap == 12

    def test_point_reports_positive_speedups(self, experiment):
        point = experiment.run_point(2, 3)
        assert point.benchmarks > 0
        assert point.average_speedup > 0.8
        assert point.geomean_speedup > 0.8

    def test_uniform_durations_keep_codar_competitive(self, experiment):
        point = experiment.run_point(1, 1)
        # With every gate lasting one cycle CODAR has no duration information
        # to exploit; whatever advantage remains comes from the context
        # mechanisms, and CODAR must at least not fall behind SABRE.
        assert point.average_speedup > 0.9

    def test_full_grid_covers_every_ratio(self, experiment):
        points = experiment.run()
        assert len(points) == 3  # 3 ratios x 1 swap ratio
        assert {p.two_qubit_ratio for p in points} == {1, 2, 8}

    def test_report_mentions_paper_configuration(self, experiment):
        points = experiment.run()
        text = DurationSensitivityExperiment.report(points)
        assert "2q/1q ratio" in text and "average_speedup" in text


# --------------------------------------------------------------------------- #
# Runtime scaling
# --------------------------------------------------------------------------- #
class TestRuntimeScaling:
    @pytest.fixture(scope="class")
    def records(self):
        experiment = RuntimeScalingExperiment(num_qubits=10,
                                              gate_counts=(50, 200),
                                              routers=[CodarRouter(), SabreRouter()])
        return experiment.run()

    def test_one_record_per_router_and_size(self, records):
        assert len(records) == 4
        assert {r.router for r in records} == {"codar", "sabre"}
        assert {r.num_gates for r in records} == {50, 200}

    def test_runtime_positive_and_swaps_counted(self, records):
        for record in records:
            assert record.runtime_s > 0
            assert record.routed_gates == record.num_gates + record.swaps

    def test_report_contains_growth_section(self, records):
        text = RuntimeScalingExperiment.report(records)
        assert "Growth factors" in text

    def test_rejects_oversized_register(self):
        with pytest.raises(ValueError):
            RuntimeScalingExperiment(device=get_device("line", num_qubits=4),
                                     num_qubits=10)


# --------------------------------------------------------------------------- #
# Initial-mapping sensitivity
# --------------------------------------------------------------------------- #
class TestLayoutSensitivity:
    @pytest.fixture(scope="class")
    def experiment(self):
        return LayoutSensitivityExperiment(max_qubits=5, max_gates=100)

    def test_records_cover_requested_strategies(self, experiment):
        records = experiment.run(strategies=["reverse_traversal_1", "identity"])
        assert {r.strategy for r in records} == {"reverse_traversal_1", "identity"}

    def test_baseline_strategy_always_present(self, experiment):
        records = experiment.run(strategies=["identity"])
        assert any(r.strategy == "reverse_traversal_1" for r in records)

    def test_relative_depth_of_baseline_is_one(self, experiment):
        records = experiment.run(strategies=["identity"])
        for record in records:
            if record.strategy == "reverse_traversal_1":
                assert record.relative_depth == pytest.approx(1.0)

    def test_report_sorted_by_quality(self, experiment):
        records = experiment.run(strategies=["reverse_traversal_1", "identity",
                                             "degree"])
        text = LayoutSensitivityExperiment.report(records)
        assert "strategy" in text and "mean_swaps" in text


# --------------------------------------------------------------------------- #
# Baseline comparison
# --------------------------------------------------------------------------- #
class TestBaselineComparison:
    @pytest.fixture(scope="class")
    def records(self):
        experiment = BaselineComparisonExperiment(max_qubits=5, max_gates=80)
        return experiment.run()

    def test_default_router_set(self):
        names = {router.name for router in default_routers()}
        assert names == {"trivial", "astar", "sabre", "codar"}

    def test_every_router_covers_every_benchmark(self, records):
        routers = {r.router for r in records}
        assert routers == {"trivial", "astar", "sabre", "codar"}
        benchmarks = {r.benchmark for r in records}
        for name in routers:
            assert {r.benchmark for r in records if r.router == name} == benchmarks

    def test_sabre_speedup_vs_itself_is_one(self, records):
        for record in records:
            if record.router == "sabre":
                assert record.speedup_vs_sabre == pytest.approx(1.0)

    def test_codar_beats_trivial_on_average(self, records):
        def mean_depth(name):
            subset = [r.weighted_depth for r in records if r.router == name]
            return sum(subset) / len(subset)
        assert mean_depth("codar") <= mean_depth("trivial")

    def test_report_renders_summary(self, records):
        text = BaselineComparisonExperiment.report(records, detailed=True)
        assert "geomean_speedup_vs_sabre" in text
