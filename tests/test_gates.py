"""Unit tests for the gate model (repro.core.gates)."""

import math

import pytest

from repro.core.gates import (
    GATE_SET,
    DurationClass,
    Gate,
    GateSpec,
    TWO_QUBIT_GATES,
    cx_gate,
    is_known_gate,
    make_gate,
    swap_gate,
)


class TestGateSet:
    def test_standard_names_present(self):
        for name in ("h", "x", "z", "t", "cx", "cz", "swap", "rz", "u3", "measure"):
            assert name in GATE_SET

    def test_two_qubit_gate_classification(self):
        assert "cx" in TWO_QUBIT_GATES
        assert "swap" in TWO_QUBIT_GATES
        assert "h" not in TWO_QUBIT_GATES

    def test_duration_classes(self):
        assert GATE_SET["h"].duration_class is DurationClass.SINGLE
        assert GATE_SET["cx"].duration_class is DurationClass.TWO
        assert GATE_SET["swap"].duration_class is DurationClass.SWAP
        assert GATE_SET["barrier"].duration_class is DurationClass.BARRIER

    def test_diagonal_metadata(self):
        for name in ("z", "s", "t", "rz", "u1", "cz", "cu1", "rzz"):
            assert GATE_SET[name].diagonal, name
        for name in ("x", "h", "cx", "u3"):
            assert not GATE_SET[name].diagonal, name

    def test_is_known_gate(self):
        assert is_known_gate("cx")
        assert not is_known_gate("frobnicate")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GateSpec("bad", num_qubits=-1)
        with pytest.raises(ValueError):
            GateSpec("bad", num_qubits=1, num_params=-2)


class TestGateInstances:
    def test_basic_construction(self):
        gate = Gate("cx", (0, 1))
        assert gate.num_qubits == 2
        assert gate.is_two_qubit
        assert not gate.is_swap
        assert gate.duration_class is DurationClass.TWO

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError, match="unknown gate"):
            Gate("nope", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2 qubits"):
            Gate("cx", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("cx", (1, 1))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(ValueError, match="expects 1 params"):
            Gate("rz", (0,), ())

    def test_parameters_coerced_to_float(self):
        gate = Gate("rz", (0,), (1,))
        assert gate.params == (1.0,)
        assert isinstance(gate.params[0], float)

    def test_remap_with_dict_and_sequence(self):
        gate = Gate("cx", (0, 2))
        assert gate.remap({0: 5, 2: 7}).qubits == (5, 7)
        assert gate.remap([9, 8, 7]).qubits == (9, 7)

    def test_remap_preserves_tag(self):
        gate = Gate("swap", (0, 1), tag="routing")
        assert gate.remap({0: 3, 1: 4}).tag == "routing"

    def test_routing_swap_flag(self):
        assert Gate("swap", (0, 1), tag="routing").is_routing_swap
        assert not Gate("swap", (0, 1)).is_routing_swap
        assert not Gate("cx", (0, 1), tag="routing").is_routing_swap

    def test_tag_does_not_affect_equality(self):
        assert Gate("swap", (0, 1), tag="routing") == Gate("swap", (0, 1))

    def test_measure_flags(self):
        gate = Gate("measure", (3,), cbits=(2,))
        assert gate.is_measure
        assert gate.cbits == (2,)

    def test_barrier_arbitrary_width(self):
        assert Gate("barrier", (0, 1, 2)).is_barrier
        assert Gate("barrier", ()).is_directive


class TestGateInverse:
    def test_hermitian_gates_are_self_inverse(self):
        for name in ("x", "y", "z", "h", "cx", "cz", "swap"):
            spec = GATE_SET[name]
            qubits = tuple(range(spec.num_qubits))
            gate = Gate(name, qubits)
            assert gate.inverse() == gate

    def test_dagger_pairs(self):
        assert Gate("s", (0,)).inverse().name == "sdg"
        assert Gate("tdg", (0,)).inverse().name == "t"

    def test_rotation_inverse_negates_angle(self):
        gate = Gate("rz", (0,), (0.5,))
        assert gate.inverse().params == (-0.5,)

    def test_u3_inverse_swaps_phi_lambda(self):
        gate = Gate("u3", (0,), (0.1, 0.2, 0.3))
        assert gate.inverse().params == (-0.1, -0.3, -0.2)

    def test_u2_inverse(self):
        gate = Gate("u2", (0,), (0.25, 0.75))
        inv = gate.inverse()
        assert inv.name == "u2"
        assert inv.params == pytest.approx((-0.75 - math.pi, -0.25 + math.pi))


class TestConstructors:
    def test_make_gate_normalises_case(self):
        assert make_gate("CX", [0, 1]).name == "cx"

    def test_swap_and_cx_helpers(self):
        assert swap_gate(2, 3).name == "swap"
        assert cx_gate(1, 0).qubits == (1, 0)
