"""Integration tests: the full pipeline from QASM text to verified routed circuits.

These tests exercise the same paths the examples and benchmark harnesses use:
parse / generate a workload, build an initial layout, route with CODAR and
SABRE on a real device model, verify the result, schedule it and (for small
cases) push it through the noisy simulator.
"""

import pytest

from repro.arch.devices import get_device
from repro.arch.durations import GateDurationMap
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.sabre.remapper import SabreRouter, reverse_traversal_layout
from repro.mapping.trivial import TrivialRouter
from repro.mapping.verification import verify_routing
from repro.qasm import circuit_to_qasm, parse_qasm
from repro.sim.fidelity import routed_fidelity
from repro.sim.noise import NoiseModel
from repro.sim.scheduler import asap_schedule
from repro.workloads import bernstein_vazirani, ghz, qaoa_maxcut, qft
from repro.workloads.suite import benchmark_suite, get_benchmark

pytestmark = pytest.mark.slow


ROUTERS = [CodarRouter(), SabreRouter(), TrivialRouter()]


class TestQasmToRoutedPipeline:
    QASM = """
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[4];
    creg c[4];
    h q[0];
    cx q[0],q[3];
    ccx q[0],q[1],q[2];
    rz(pi/8) q[3];
    cx q[3],q[1];
    measure q -> c;
    """

    @pytest.mark.parametrize("router", ROUTERS, ids=lambda r: r.name)
    def test_parse_route_verify(self, router):
        circuit = parse_qasm(self.QASM)
        device = get_device("ibm_q20_tokyo")
        result = router.run(circuit, device)
        verify_routing(result)
        assert result.routed.count_ops()["measure"] == 4

    def test_routed_circuit_exports_to_qasm(self):
        circuit = parse_qasm(self.QASM)
        device = get_device("grid", rows=2, cols=2)
        result = CodarRouter().run(circuit, device)
        text = circuit_to_qasm(result.routed)
        reparsed = parse_qasm(text)
        assert len(reparsed) == len(result.routed)
        assert reparsed.num_qubits >= result.original.num_qubits


class TestSharedInitialMapping:
    def test_both_routers_start_from_same_layout(self):
        circuit = qft(6)
        device = get_device("ibm_q20_tokyo")
        layout = reverse_traversal_layout(circuit, device)
        codar = CodarRouter().run(circuit, device, initial_layout=layout)
        sabre = SabreRouter().run(circuit, device, initial_layout=layout)
        assert codar.initial_layout == sabre.initial_layout == layout
        verify_routing(codar)
        verify_routing(sabre)


class TestAcrossPaperArchitectures:
    @pytest.mark.parametrize("device_name", [
        "ibm_q16_melbourne", "ibm_q20_tokyo", "grid_6x6", "google_sycamore54",
    ])
    def test_codar_and_sabre_route_small_benchmarks(self, device_name):
        device = get_device(device_name)
        for circuit in (qft(5), bernstein_vazirani(6), qaoa_maxcut(6)):
            layout = reverse_traversal_layout(circuit, device)
            for router in (CodarRouter(), SabreRouter()):
                result = router.run(circuit, device, initial_layout=layout)
                verify_routing(result)
                assert result.weighted_depth > 0

    def test_large_benchmarks_only_fit_sycamore(self):
        case_36 = [c for c in benchmark_suite() if c.num_qubits == 36][0]
        assert not case_36.fits(get_device("ibm_q20_tokyo").num_qubits)
        assert case_36.fits(get_device("google_sycamore54").num_qubits)


class TestSuiteRoutingSample:
    @pytest.mark.parametrize("name", [
        "qft_8", "bv_9", "rc_adder_8", "hwb_5", "qaoa_10_p2", "swaptest_9",
    ])
    def test_suite_entries_route_and_comply(self, name):
        circuit = get_benchmark(name)
        device = get_device("ibm_q20_tokyo")
        result = CodarRouter().run(circuit, device)
        verify_routing(result, check_semantics=circuit.num_qubits <= 9)

    def test_weighted_depth_never_below_original_lower_bound(self):
        # Routing adds SWAPs; the weighted depth of the routed circuit can
        # never beat the original circuit's own critical path.
        device = get_device("ibm_q20_tokyo")
        for name in ("qft_8", "rc_adder_8"):
            circuit = get_benchmark(name)
            lower_bound = asap_schedule(circuit, device.durations).makespan
            for router in (CodarRouter(), SabreRouter()):
                result = router.run(circuit, device)
                assert result.weighted_depth >= lower_bound


class TestEndToEndFidelity:
    def test_routed_ghz_keeps_high_fidelity_under_mild_noise(self):
        device = get_device("grid", rows=2, cols=3)
        result = CodarRouter().run(ghz(5), device)
        fidelity = routed_fidelity(result, NoiseModel.dephasing_dominant(t2=2000))
        assert fidelity > 0.9

    def test_faster_routing_gives_no_worse_fidelity(self):
        device = get_device("grid", rows=2, cols=3)
        circuit = qft(4)
        layout = reverse_traversal_layout(circuit, device)
        codar = CodarRouter().run(circuit, device, initial_layout=layout)
        sabre = SabreRouter().run(circuit, device, initial_layout=layout)
        noise = NoiseModel.dephasing_dominant(t2=200)
        codar_fidelity = routed_fidelity(codar, noise)
        sabre_fidelity = routed_fidelity(sabre, noise)
        if codar.weighted_depth < sabre.weighted_depth:
            assert codar_fidelity >= sabre_fidelity - 1e-6


class TestDurationModelsAcrossTechnologies:
    def test_ion_trap_durations_change_weighted_depth_not_correctness(self):
        ion_trap = GateDurationMap.for_technology("ion_trap")
        device = get_device("ibm_q20_tokyo", durations=ion_trap)
        result = CodarRouter().run(qft(5), device)
        verify_routing(result)
        super_device = get_device("ibm_q20_tokyo")
        baseline = CodarRouter().run(qft(5), super_device)
        assert result.weighted_depth > baseline.weighted_depth

    def test_neutral_atom_profile(self):
        neutral = GateDurationMap.for_technology("neutral_atom")
        device = get_device("grid", rows=3, cols=3, durations=neutral)
        result = CodarRouter().run(qaoa_maxcut(8), device)
        verify_routing(result)
