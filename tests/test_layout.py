"""Tests for layouts and initial-mapping strategies."""

import pytest

from repro.arch.coupling import CouplingGraph
from repro.core.circuit import Circuit
from repro.mapping.layout import (
    Layout,
    degree_layout,
    identity_layout,
    initial_layout,
    random_layout,
)


class TestLayout:
    def test_identity(self):
        layout = Layout.identity(4)
        assert layout.physical(2) == 2
        assert layout.logical(3) == 3

    def test_must_be_permutation(self):
        with pytest.raises(ValueError):
            Layout([0, 0, 1])
        with pytest.raises(ValueError):
            Layout([0, 2, 3])

    def test_round_trip_consistency(self):
        layout = Layout([2, 0, 3, 1])
        for logical in range(4):
            assert layout.logical(layout.physical(logical)) == logical

    def test_swap_physical(self):
        layout = Layout.identity(4)
        layout.swap_physical(0, 3)
        assert layout.physical(0) == 3
        assert layout.physical(3) == 0
        assert layout.logical(3) == 0

    def test_swap_is_involution(self):
        layout = Layout([1, 3, 0, 2])
        snapshot = layout.physical_list()
        layout.swap_physical(1, 2)
        layout.swap_physical(1, 2)
        assert layout.physical_list() == snapshot

    def test_swapped_physical_does_not_mutate(self):
        layout = Layout.identity(3)
        other = layout.swapped_physical(0, 1)
        assert layout.physical(0) == 0
        assert other.physical(0) == 1

    def test_copy_and_equality(self):
        layout = Layout([1, 0, 2])
        clone = layout.copy()
        assert clone == layout
        clone.swap_physical(0, 2)
        assert clone != layout

    def test_from_partial(self):
        layout = Layout.from_partial({0: 3, 1: 1}, num_physical=4)
        assert layout.physical(0) == 3
        assert layout.physical(1) == 1
        # padding slots fill the remaining physical qubits
        assert sorted(layout.physical_list()) == [0, 1, 2, 3]

    def test_from_partial_conflict_rejected(self):
        with pytest.raises(ValueError):
            Layout.from_partial({0: 1, 1: 1}, num_physical=3)

    def test_compose_permutation_view(self):
        layout = Layout([2, 0, 1])
        assert layout.compose_permutation() == {0: 2, 1: 0, 2: 1}


class TestInitialMappings:
    def _circuit(self):
        circ = Circuit(3)
        circ.cx(0, 1).cx(0, 2).cx(0, 1)
        return circ

    def test_identity_strategy(self):
        layout = identity_layout(self._circuit(), CouplingGraph.line(5))
        assert layout.physical_list()[:3] == [0, 1, 2]

    def test_degree_strategy_puts_busiest_on_best_connected(self):
        # Qubit 0 interacts most; the centre of a line has the highest degree.
        coupling = CouplingGraph.line(5)
        layout = degree_layout(self._circuit(), coupling)
        centre_degrees = [coupling.degree(q) for q in range(5)]
        assert coupling.degree(layout.physical(0)) == max(centre_degrees)

    def test_random_strategy_is_seeded(self):
        coupling = CouplingGraph.grid(2, 3)
        a = random_layout(self._circuit(), coupling, seed=11)
        b = random_layout(self._circuit(), coupling, seed=11)
        c = random_layout(self._circuit(), coupling, seed=12)
        assert a == b
        assert a != c

    def test_random_strategy_is_deterministic_through_router_run(self):
        # End to end: the seed threads from Router.run through the strategy,
        # so two runs agree on the initial layout *and* the routed circuit.
        from repro.arch.devices import get_device
        from repro.mapping.codar.remapper import CodarRouter
        from repro.qasm.exporter import circuit_to_qasm

        device = get_device("ibm_q20_tokyo")
        runs = [CodarRouter().run(self._circuit(), device,
                                  layout_strategy="random", seed=23)
                for _ in range(2)]
        assert runs[0].initial_layout == runs[1].initial_layout
        assert circuit_to_qasm(runs[0].routed) == circuit_to_qasm(runs[1].routed)
        other = CodarRouter().run(self._circuit(), device,
                                  layout_strategy="random", seed=24)
        assert other.initial_layout != runs[0].initial_layout

    def test_capacity_check(self):
        with pytest.raises(ValueError, match="only has"):
            identity_layout(Circuit(10), CouplingGraph.line(4))

    def test_initial_layout_dispatch(self):
        coupling = CouplingGraph.grid(2, 2)
        assert initial_layout(self._circuit(), coupling, "identity") == Layout.identity(4)
        with pytest.raises(ValueError, match="unknown layout strategy"):
            initial_layout(self._circuit(), coupling, "magic")
