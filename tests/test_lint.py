"""Tests for ``repro.devtools.lint`` — the AST-based invariant checker.

Golden fixture pairs per rule (bad fires, good is clean), framework
behaviour (suppressions, baseline, fingerprints, CLI exit codes), and the
flagship integration check: the linter runs **clean** over the live repo,
which is what lets CI fail on any new violation.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import Finding, get_rules, run_lint
from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.cli import main as lint_main

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"
ALL_RULES = ("RL001", "RL002", "RL003", "RL004", "RL005")


def lint_fixture(name, rules=None):
    return run_lint([FIXTURES / name], root=REPO, rules=rules)


class TestRegistry:
    def test_all_five_rules_registered(self):
        ids = [rule.id for rule in get_rules()]
        assert list(ALL_RULES) == [i for i in ids if i in ALL_RULES]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="RL999"):
            get_rules(["RL999"])

    def test_rule_filter(self):
        assert [rule.id for rule in get_rules(["RL002"])] == ["RL002"]


class TestGoldenFixtures:
    """Every rule has a firing fixture and a clean fixture."""

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_bad_fixture_fires(self, rule_id):
        findings = lint_fixture(f"{rule_id.lower()}_bad.py")
        assert {f.rule for f in findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_good_fixture_is_clean(self, rule_id):
        assert lint_fixture(f"{rule_id.lower()}_good.py") == []

    def test_rl001_reports_both_unlocked_accesses(self):
        findings = lint_fixture("rl001_bad.py")
        assert len(findings) == 2
        assert all("self._lock" in f.message for f in findings)

    def test_rl002_distinguishes_duration_from_missing_annotation(self):
        messages = [f.message for f in lint_fixture("rl002_bad.py")]
        assert any("duration arithmetic" in m for m in messages)
        assert any("wall-clock" in m for m in messages)

    def test_rl003_names_the_field_and_both_methods(self):
        findings = lint_fixture("rl003_bad.py")
        assert {"Spec.key" in f.message or "Spec.to_dict" in f.message
                for f in findings} == {True}
        assert all("'flavour'" in f.message for f in findings)

    def test_rl004_covers_counter_histogram_and_label(self):
        messages = " | ".join(f.message
                              for f in lint_fixture("rl004_bad.py"))
        assert "_total" in messages
        assert "_bucket" in messages
        assert "customer" in messages

    def test_rl005_flags_sleep_and_throwaway_event(self):
        messages = [f.message for f in lint_fixture("rl005_bad.py")]
        assert any("time.sleep" in m for m in messages)
        assert any("throwaway event" in m for m in messages)


class TestFramework:
    def test_suppression_comment_silences_one_rule(self, tmp_path):
        source = ("import time\n\n\n"
                  "def stamp():\n"
                  "    return time.time()  # lint: ignore[RL002]\n")
        path = tmp_path / "suppressed.py"
        path.write_text(source)
        assert run_lint([path], root=tmp_path) == []

    def test_suppression_comment_is_rule_specific(self, tmp_path):
        source = ("import time\n\n\n"
                  "def stamp():\n"
                  "    return time.time()  # lint: ignore[RL001]\n")
        path = tmp_path / "suppressed.py"
        path.write_text(source)
        findings = run_lint([path], root=tmp_path)
        assert [f.rule for f in findings] == ["RL002"]

    def test_syntax_error_reports_rl000(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        findings = run_lint([path], root=tmp_path)
        assert [f.rule for f in findings] == ["RL000"]

    def test_fixture_directory_is_skipped_on_recursion(self):
        # Recursing over tests/ must not descend into lint_fixtures/ —
        # otherwise the bad fixtures would fail the integration run.
        findings = run_lint([REPO / "tests"], root=REPO)
        assert not any("lint_fixtures" in f.path for f in findings)

    def test_fingerprint_is_line_independent(self):
        a = Finding("RL002", "src/x.py", 10, "msg")
        b = Finding("RL002", "src/x.py", 99, "msg")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != Finding("RL001", "src/x.py", 10,
                                        "msg").fingerprint

    def test_baseline_round_trip_and_split(self, tmp_path):
        old = Finding("RL002", "src/x.py", 1, "grandfathered")
        new = Finding("RL002", "src/x.py", 2, "fresh")
        path = tmp_path / "baseline.json"
        baseline = Baseline()
        baseline.save(path, [old])
        reloaded = Baseline.load(path)
        fresh, grandfathered, stale = reloaded.split([old, new])
        assert fresh == [new]
        assert grandfathered == [old]
        assert stale == []
        # Paying off the debt leaves a stale entry behind.
        _, _, stale = reloaded.split([new])
        assert stale == [old.fingerprint]

    def test_corrupt_baseline_degrades_to_empty(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        assert Baseline.load(path).entries == {}


class TestCli:
    def test_exit_1_on_bad_fixture(self, tmp_path):
        code = lint_main([str(FIXTURES / "rl002_bad.py"),
                          "--root", str(REPO),
                          "--baseline", str(tmp_path / "none.json")])
        assert code == 1

    def test_exit_0_on_clean_fixture(self, tmp_path):
        code = lint_main([str(FIXTURES / "rl002_good.py"),
                          "--root", str(REPO),
                          "--baseline", str(tmp_path / "none.json")])
        assert code == 0

    def test_json_output_shape(self, tmp_path, capsys):
        code = lint_main([str(FIXTURES / "rl005_bad.py"), "--json",
                          "--root", str(REPO),
                          "--baseline", str(tmp_path / "none.json")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["grandfathered"] == []
        rules = {row["rule"] for row in payload["new"]}
        assert rules == {"RL005"}
        for row in payload["new"]:
            assert set(row) == {"rule", "path", "line", "message",
                                "fingerprint"}

    def test_update_baseline_then_clean(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(FIXTURES / "rl001_bad.py"),
                          "--root", str(REPO),
                          "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        assert lint_main([str(FIXTURES / "rl001_bad.py"),
                          "--root", str(REPO),
                          "--baseline", str(baseline)]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out

    def test_repro_lint_subprocess_fails_on_seeded_violation(self, tmp_path):
        """The CI contract: `repro lint` exits 1 on a new violation."""
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint",
             str(FIXTURES / "rl002_bad.py"),
             "--root", str(REPO),
             "--baseline", str(tmp_path / "none.json")],
            capture_output=True, text=True, env=env, cwd=str(REPO))
        assert proc.returncode == 1, proc.stderr
        assert "RL002" in proc.stdout


@pytest.mark.slow
class TestIntegration:
    def test_repo_is_clean_against_shipped_baseline(self):
        """src/ + tests/ + benchmarks/ lint clean with the empty baseline."""
        findings = run_lint([REPO / "src", REPO / "tests",
                             REPO / "benchmarks"], root=REPO)
        baseline = Baseline.load(REPO / "lint-baseline.json")
        new, _, _ = baseline.split(findings)
        assert new == [], "\n".join(f.render() for f in new)

    def test_shipped_baseline_is_empty(self):
        assert Baseline.load(REPO / "lint-baseline.json").entries == {}


class TestClockRegressions:
    """Satellite of ISSUE 10: duration math moved off the wall clock."""

    def test_metrics_recorder_defaults_to_monotonic(self):
        import time

        from repro.obs.timeseries import MetricsRecorder

        recorder = MetricsRecorder(lambda: {})
        assert recorder.clock is time.monotonic

    def test_alert_manager_defaults_to_monotonic(self):
        import time

        from repro.obs.alerts import AlertManager

        assert AlertManager([]).clock is time.monotonic

    def test_monitor_defaults_to_monotonic(self):
        import time

        from repro.obs.monitor import Monitor

        monitor = Monitor(lambda: {}, config=False)
        assert monitor.clock is time.monotonic
        assert monitor.recorder.clock is time.monotonic
        assert monitor.alerts.clock is time.monotonic

    def test_profile_wall_s_survives_wall_clock_step(self):
        from repro.obs.profile import ProfileReport

        report = ProfileReport(0.005)
        # Simulate an NTP step backwards between start and stop: the epoch
        # fields move, but the duration must come from the monotonic twins.
        report.stopped_at = report.started_at - 3600.0
        report._stopped_mono = report._started_mono + 0.25
        assert report.wall_s == pytest.approx(0.25)
