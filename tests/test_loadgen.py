"""repro.loadgen — open-loop arrival schedules, tenant mixes, workload
pools and a short end-to-end loadtest step against a live server."""

import json

import pytest

from repro.loadgen import LoadTest, TenantMix, WorkloadPool, arrival_times
from repro.server import CompileServer


class TestArrivalTimes:
    def test_deterministic_and_bounded(self):
        first = arrival_times(10.0, 2.0, seed=7)
        again = arrival_times(10.0, 2.0, seed=7)
        assert first == again
        assert all(0.0 <= t < 2.0 for t in first)
        assert first == sorted(first)
        assert arrival_times(10.0, 2.0, seed=8) != first

    def test_poisson_mean_rate_close_to_offered(self):
        times = arrival_times(50.0, 20.0, seed=1)
        assert 800 <= len(times) <= 1200  # 1000 expected, generous CI band

    def test_heavy_tail_matches_offered_load_but_bursts(self):
        times = arrival_times(50.0, 20.0, process="heavy_tail", seed=1)
        # Same mean inter-arrival: count in the same ballpark...
        assert 600 <= len(times) <= 1600
        gaps = [b - a for a, b in zip(times, times[1:])]
        # ...but with a far heavier tail than the exponential draws.
        assert max(gaps) > 10 * (sum(gaps) / len(gaps))

    def test_degenerate_inputs_yield_empty_schedule(self):
        assert arrival_times(0.0, 10.0) == []
        assert arrival_times(5.0, 0.0) == []

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            arrival_times(5.0, 1.0, process="bursty")


class TestTenantMix:
    def test_parse_and_normalise(self):
        mix = TenantMix.parse("alice:2, bob:1, carol")
        assert mix.weights == {"alice": 2.0, "bob": 1.0, "carol": 1.0}
        assert mix.tenants == ["alice", "bob", "carol"]

    def test_assign_follows_weights(self):
        mix = TenantMix({"alice": 3.0, "bob": 1.0}, seed=0)
        draws = mix.assign(4000)
        share = draws.count("alice") / len(draws)
        assert 0.70 < share < 0.80

    def test_assign_deterministic_per_seed(self):
        assert (TenantMix({"a": 1, "b": 1}, seed=3).assign(50)
                == TenantMix({"a": 1, "b": 1}, seed=3).assign(50))

    def test_defaults_and_validation(self):
        assert TenantMix().tenants == ["default"]
        with pytest.raises(ValueError):
            TenantMix({"a": 0.0})


class TestWorkloadPool:
    def test_jobs_have_distinct_keys(self):
        pool = WorkloadPool(seed=5)
        keys = {pool.next_job().key for _ in range(12)}
        assert len(keys) == 12  # unique seeds defeat coalescing/cache

    def test_seed_isolation_between_pools(self):
        first = WorkloadPool(seed=1).next_job()
        second = WorkloadPool(seed=2).next_job()
        assert first.key != second.key


class TestLoadTestEndToEnd:
    def test_step_measures_from_server_histograms(self):
        with CompileServer(port=0, workers=2, monitor=False) as server:
            test = LoadTest(server.url, {"alice": 2, "bob": 1},
                            p95_target_s=5.0, seed=0)
            assert test._prefix == "repro_server"
            step = test.run_step(rate=8.0, duration=1.5)
            assert step["submitted"] > 0
            assert step["achieved_jobs_per_s"] > 0
            assert step["submit_errors"] == 0
            assert step["error_rate"] == 0.0
            assert set(step["tenants"]) <= {"alice", "bob"}
            assert step["wait_p95_s"] >= 0.0
            assert step["service_p95_s"] > 0.0
            assert step["met_target"] is True
            report = json.loads(json.dumps(step))  # JSON-serialisable
            assert report["p95_target_s"] == 5.0

    def test_run_reports_sustained_rate(self):
        with CompileServer(port=0, workers=2, monitor=False) as server:
            test = LoadTest(server.url, p95_target_s=5.0, seed=1)
            report = test.run(rates=(6.0,), duration=1.0)
            assert report["prefix"] == "repro_server"
            assert len(report["steps"]) == 1
            assert report["sustained_jobs_per_s"] >= 0.0
            assert report["tenant_mix"] == {"default": 1.0}
