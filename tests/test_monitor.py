"""Monitoring layer: time-series windows, SLO burn rates, alert lifecycle.

Everything state-machine- and math-level runs on injected clocks and
synthetic snapshot sequences — no sleeps, no background threads.  The HTTP
tests run real in-process servers (and a 2-shard in-process gateway) with
the monitor's background loop *disabled by interval*, driving ticks by hand
so the endpoints are exercised deterministically.
"""

import json

import pytest

from repro.cluster import ClusterGateway
from repro.obs import configure, configure_store, get_store
from repro.obs.alerts import FIRING, OK, PENDING, AlertManager, BurnRateRule
from repro.obs.dashboard import render_dashboard, sparkline
from repro.obs.logging import STDERR
from repro.obs.monitor import (DEFAULT_SLOS, Monitor, MonitorConfig,
                               default_rules)
from repro.obs.slo import SLOSpec, evaluate_slo, evaluate_window
from repro.obs.timeseries import (MetricsRecorder, percentile_from_cumulative,
                                  sample_from_prometheus, window_label)
from repro.server import CompileClient, CompileServer
from repro.server.client import ServerError
from repro.server.metrics import ServerMetrics
from repro.service import make_job
from repro.workloads.generators import ghz

DEVICE = "ibm_q20_tokyo"


def _job(n: int = 3, router: str = "codar", **kwargs):
    return make_job(ghz(n), DEVICE, router, **kwargs)


@pytest.fixture(autouse=True)
def _isolated_obs():
    configure(sink=None, level="info")
    get_store().clear()
    yield
    configure(sink=STDERR, level="info")
    configure_store(4096)
    get_store().clear()


class FakeClock:
    def __init__(self, t: float = 1_000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> float:
        self.t += seconds
        return self.t


def _sample(completed=0, failed=0, service=None, gauges=None):
    """A synthetic cumulative source sample.

    ``service`` maps finite bucket bound -> cumulative count (with implied
    sum/count); omitted histograms still appear, empty.
    """
    service = service or {}
    count = max(service.values(), default=0)
    return {
        "counters": {"submitted": completed, "completed": completed,
                     "failed": failed, "coalesced": 0, "cache_hits": 0,
                     "rejected": 0},
        "gauges": dict(gauges or {}),
        "histograms": {
            "wait_seconds": {"buckets": [], "sum": 0.0, "count": 0},
            "service_seconds": {
                "buckets": sorted(service.items()),
                "sum": sum(service.values()) * 0.1,
                "count": count,
            },
        },
    }


# --------------------------------------------------------------------------- #
# Time-series recorder
# --------------------------------------------------------------------------- #
class TestWindowLabel:
    def test_labels(self):
        assert window_label(60) == "1m"
        assert window_label(300) == "5m"
        assert window_label(1800) == "30m"
        assert window_label(3600) == "1h"
        assert window_label(45) == "45s"


class TestPercentileFromCumulative:
    def test_empty_is_zero(self):
        assert percentile_from_cumulative([], 0, 0.95) == 0.0

    def test_upper_bound_semantics(self):
        buckets = [(0.1, 50), (1.0, 90), (2.5, 100)]
        assert percentile_from_cumulative(buckets, 100, 0.50) == 0.1
        assert percentile_from_cumulative(buckets, 100, 0.95) == 2.5

    def test_all_overflow_reports_mean(self):
        # Nothing landed in a finite bucket: the bounds say nothing, the
        # mean is the only honest estimate (mirrors Histogram.percentile).
        buckets = [(0.1, 0), (1.0, 0)]
        assert percentile_from_cumulative(buckets, 4, 0.95, 40.0) == 10.0

    def test_partial_overflow_reports_last_finite_bound(self):
        buckets = [(0.1, 2), (1.0, 3)]
        assert percentile_from_cumulative(buckets, 10, 0.95) == 1.0


class TestMetricsRecorder:
    def _recorder(self, clock, **kwargs):
        self.feed = _sample()
        kwargs.setdefault("windows", (10.0, 30.0))
        return MetricsRecorder(lambda: self.feed, interval_s=1.0,
                               clock=clock, **kwargs)

    def test_needs_two_snapshots(self):
        clock = FakeClock()
        recorder = self._recorder(clock)
        assert recorder.window(10.0) is None
        recorder.sample_now()
        assert recorder.window(10.0) is None

    def test_window_rates_and_percentiles(self):
        clock = FakeClock()
        recorder = self._recorder(clock)
        recorder.sample_now()
        # 10 seconds later: 20 jobs done, 2 failed; latencies: 15 under
        # 0.1s, 5 under 2.5s (cumulative 20).
        clock.advance(10.0)
        self.feed = _sample(completed=20, failed=2,
                            service={0.1: 15, 1.0: 15, 2.5: 20})
        recorder.sample_now()
        view = recorder.window(10.0)
        assert view["counters"]["completed"] == 20
        assert view["jobs_per_s"] == pytest.approx(2.0)
        assert view["error_rate"] == pytest.approx(0.1)
        service = view["histograms"]["service_seconds"]
        assert service["count"] == 20
        assert service["p50"] == 0.1
        assert service["p95"] == 2.5

    def test_window_is_a_difference_not_a_lifetime(self):
        clock = FakeClock()
        recorder = self._recorder(clock)
        # A slow lifetime history, then a fast patch: the short window must
        # see only the fast tail, not the lifetime aggregate.
        self.feed = _sample(completed=100, service={0.1: 0, 2.5: 100})
        recorder.sample_now()
        for step in (1, 2):
            clock.advance(5.0)
            self.feed = _sample(completed=100 + 5 * step,
                                service={0.1: 5 * step, 2.5: 100 + 5 * step})
            recorder.sample_now()
        view = recorder.window(10.0)
        assert view["counters"]["completed"] == 10
        assert view["histograms"]["service_seconds"]["p95"] == 0.1

    def test_counter_reset_clamps_to_zero(self):
        clock = FakeClock()
        recorder = self._recorder(clock)
        self.feed = _sample(completed=50)
        recorder.sample_now()
        clock.advance(5.0)
        self.feed = _sample(completed=3)  # shard restarted
        recorder.sample_now()
        view = recorder.window(10.0)
        assert view["counters"]["completed"] == 0
        assert view["jobs_per_s"] == 0.0

    def test_ring_is_bounded(self):
        clock = FakeClock()
        recorder = self._recorder(clock, max_samples=5)
        for _ in range(20):
            clock.advance(1.0)
            recorder.sample_now()
        assert len(recorder) == 5

    def test_series_tracks_and_json_round_trip(self):
        clock = FakeClock()
        recorder = self._recorder(clock)
        for index in range(4):
            self.feed = _sample(completed=index * 10,
                                service={0.1: index * 10},
                                gauges={"queue_depth": index})
            recorder.sample_now()
            clock.advance(1.0)
        payload = recorder.history_payload()
        series = payload["series"]
        assert series["jobs_per_s"] == pytest.approx([10.0, 10.0, 10.0])
        assert series["queue_depth"] == [1.0, 2.0, 3.0]
        json.dumps(payload)  # +Inf never leaks into the payload

    def test_window_label_views(self):
        clock = FakeClock()
        recorder = self._recorder(clock)
        recorder.sample_now()
        clock.advance(30.0)
        recorder.sample_now()
        views = recorder.windows_view()
        assert set(views) == {"10s", "30s"}


class TestSampleFromPrometheus:
    def test_round_trip_from_server_metrics(self):
        metrics = ServerMetrics()
        metrics.observe_job(0.01, 0.5, ok=True, cache_hit=False)
        metrics.observe_job(0.02, 3.0, ok=False, cache_hit=False)
        from repro.server.metrics import iter_samples
        samples = dict(iter_samples(metrics.to_prometheus()))
        sample = sample_from_prometheus(samples)
        direct = metrics.history_sample()
        assert sample["counters"]["completed"] == 2
        assert sample["counters"]["failed"] == 1
        assert (sample["histograms"]["service_seconds"]["count"]
                == direct["histograms"]["service_seconds"]["count"])
        assert (sample["histograms"]["service_seconds"]["buckets"]
                == [(bound, float(cum)) for bound, cum
                    in direct["histograms"]["service_seconds"]["buckets"]])


# --------------------------------------------------------------------------- #
# SLO evaluation
# --------------------------------------------------------------------------- #
class TestSLOSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="nope")
        with pytest.raises(ValueError):
            SLOSpec(name="x", target=1.5)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency", threshold_s=0)

    def test_dict_round_trip(self):
        spec = SLOSpec(name="lat", threshold_s=1.0, target=0.9,
                       description="d")
        assert SLOSpec.from_dict(spec.to_dict()) == spec

    def test_budget(self):
        assert SLOSpec(name="x", target=0.95).budget == pytest.approx(0.05)


class TestEvaluateWindow:
    def _view(self, completed=100, failed=0, service=None):
        # Windowed views carry *cumulative* bucket values.
        service = service or {0.1: 90, 2.5: 100}
        buckets = sorted(service.items())
        count = buckets[-1][1] if buckets else 0
        return {"counters": {"completed": completed, "failed": failed},
                "histograms": {"service_seconds": {
                    "count": count, "sum": 1.0, "buckets": buckets}}}

    def test_no_data_windows(self):
        spec = SLOSpec(name="lat", threshold_s=1.0)
        assert evaluate_window(spec, None) is None
        assert evaluate_window(spec, self._view(service={0.1: 0, 2.5: 0})) \
            is None

    def test_latency_burn_rate(self):
        spec = SLOSpec(name="lat", threshold_s=2.5, target=0.95)
        result = evaluate_window(spec, self._view())
        assert result["bad"] == 0
        spec_tight = SLOSpec(name="lat", threshold_s=0.1, target=0.95)
        result = evaluate_window(spec_tight, self._view())
        assert result["bad"] == 10
        assert result["bad_fraction"] == pytest.approx(0.1)
        assert result["burn_rate"] == pytest.approx(2.0)

    def test_latency_overflow_is_bad(self):
        # 10 observations, only 8 landed under any finite bound: the 2 in
        # +Inf cannot be proven fast, so they count against the budget even
        # with the threshold above every finite bound.
        spec = SLOSpec(name="lat", threshold_s=50.0, target=0.5)
        view = self._view(service={0.1: 5, 2.5: 8})
        view["histograms"]["service_seconds"]["count"] = 10
        result = evaluate_window(spec, view)
        assert result["bad"] == 2

    def test_availability(self):
        spec = SLOSpec(name="avail", kind="availability", target=0.99)
        result = evaluate_window(spec, self._view(completed=200, failed=4))
        assert result["bad_fraction"] == pytest.approx(0.02)
        assert result["burn_rate"] == pytest.approx(2.0)

    def test_evaluate_slo_budget_uses_longest_window(self):
        spec = SLOSpec(name="lat", threshold_s=0.1, target=0.9)
        windows = {"1m": self._view(service={0.1: 50, 2.5: 100}),
                   "5m": self._view(service={0.1: 95, 2.5: 100})}
        result = evaluate_slo(spec, windows)
        assert result["budget"]["window"] == "5m"
        assert result["budget"]["consumed_fraction"] == pytest.approx(0.5)
        assert not result["compliant"]  # the 1m window is out of budget


# --------------------------------------------------------------------------- #
# Alert state machine
# --------------------------------------------------------------------------- #
def _slo_result(short_burn, long_burn, short="1m", long="5m"):
    return {"windows": {short: {"burn_rate": short_burn},
                        long: {"burn_rate": long_burn}}}


class TestBurnRateRule:
    def test_dict_round_trip(self):
        rule = BurnRateRule(name="r", slo="s", threshold=4.0, for_s=10.0)
        assert BurnRateRule.from_dict(rule.to_dict()) == rule

    def test_multi_window_agreement_required(self):
        rule = BurnRateRule(name="r", slo="s", threshold=2.0)
        assert rule.condition(_slo_result(5.0, 5.0))[0]
        assert not rule.condition(_slo_result(5.0, 0.5))[0]  # long recovered
        assert not rule.condition(_slo_result(0.5, 5.0))[0]  # spike is over
        assert not rule.condition(None)[0]
        assert not rule.condition({"windows": {"1m": {"burn_rate": 9.0}}})[0]


class TestAlertManager:
    def _manager(self, clock, *, for_s=30.0, resolve_s=30.0):
        rule = BurnRateRule(name="r", slo="s", threshold=2.0,
                            for_s=for_s, resolve_s=resolve_s)
        return AlertManager([rule], clock=clock), rule

    def _tick(self, manager, clock, burn, seconds=10.0):
        clock.advance(seconds)
        return manager.evaluate({"s": _slo_result(burn, burn)})

    def test_pending_firing_resolved_lifecycle(self):
        clock = FakeClock()
        manager, _ = self._manager(clock)
        assert manager.state_of("r") == OK
        events = self._tick(manager, clock, 5.0)
        assert manager.state_of("r") == PENDING
        assert [e["state"] for e in events] == ["pending"]
        self._tick(manager, clock, 5.0, seconds=15.0)
        self._tick(manager, clock, 5.0, seconds=20.0)  # dwell satisfied
        assert manager.state_of("r") == FIRING
        # Clean ticks: stays firing until resolve_s elapses continuously.
        self._tick(manager, clock, 0.1, seconds=10.0)
        assert manager.state_of("r") == FIRING
        events = self._tick(manager, clock, 0.1, seconds=30.0)
        assert manager.state_of("r") == OK
        assert [e["state"] for e in events] == ["resolved"]

    def test_flapping_never_fires(self):
        clock = FakeClock()
        manager, _ = self._manager(clock, for_s=25.0)
        # Breach for 20s, recover for 10s, repeatedly: the for-duration
        # dwell is never satisfied, so the rule never pages.
        for _ in range(10):
            self._tick(manager, clock, 5.0)
            self._tick(manager, clock, 5.0)
            self._tick(manager, clock, 0.1)
        assert manager.state_of("r") != FIRING
        assert manager.firing_count() == 0

    def test_resolve_hysteresis_under_flapping(self):
        clock = FakeClock()
        manager, _ = self._manager(clock, for_s=0.0, resolve_s=25.0)
        self._tick(manager, clock, 5.0)
        assert manager.state_of("r") == FIRING  # for_s=0 fires immediately
        # Clean/breach flapping: clear_since resets on every breach, so the
        # alert keeps firing rather than resolve/refire churning.
        for _ in range(5):
            self._tick(manager, clock, 0.1)
            self._tick(manager, clock, 5.0)
        assert manager.state_of("r") == FIRING
        assert len([e for e in manager.events() if e["state"] == "resolved"]) \
            == 0

    def test_pending_resets_on_any_clean_tick(self):
        clock = FakeClock()
        manager, _ = self._manager(clock, for_s=60.0)
        self._tick(manager, clock, 5.0)
        assert manager.state_of("r") == PENDING
        self._tick(manager, clock, 0.1)
        assert manager.state_of("r") == OK

    def test_exemplar_stamped_on_firing(self):
        clock = FakeClock()
        rule = BurnRateRule(name="r", slo="s", threshold=2.0, for_s=0.0)
        manager = AlertManager([rule], clock=clock,
                               exemplar_source=lambda _rule: "tracedeadbeef")
        clock.advance(10.0)
        events = manager.evaluate({"s": _slo_result(5.0, 5.0)})
        assert events[0]["state"] == "firing"
        assert events[0]["exemplar_trace_id"] == "tracedeadbeef"
        assert manager.active()[0]["exemplar_trace_id"] == "tracedeadbeef"

    def test_events_are_bounded_and_newest_first(self):
        clock = FakeClock()
        rule = BurnRateRule(name="r", slo="s", threshold=2.0, for_s=0.0,
                            resolve_s=0.0)
        manager = AlertManager([rule], clock=clock, max_events=4)
        for _ in range(10):
            self._tick(manager, clock, 5.0)
            self._tick(manager, clock, 0.1)
        events = manager.events()
        assert len(events) == 4
        assert events[0]["at"] >= events[-1]["at"]
        assert manager.events(limit=2) == events[:2]

    def test_duplicate_rule_names_rejected(self):
        rules = [BurnRateRule(name="r", slo="a"),
                 BurnRateRule(name="r", slo="b")]
        with pytest.raises(ValueError):
            AlertManager(rules)


# --------------------------------------------------------------------------- #
# Monitor facade over real ServerMetrics
# --------------------------------------------------------------------------- #
class TestMonitor:
    def test_default_rules_pair_per_slo(self):
        rules = default_rules(DEFAULT_SLOS)
        assert len(rules) == 2 * len(DEFAULT_SLOS)
        assert {rule.slo for rule in rules} == {spec.name
                                                for spec in DEFAULT_SLOS}

    def test_config_round_trip_and_from_value(self):
        config = MonitorConfig(interval_s=1.0, windows=(10.0, 60.0),
                               for_s=5.0)
        rebuilt = MonitorConfig.from_value(config.to_dict())
        assert rebuilt.interval_s == 1.0
        assert rebuilt.windows == (10.0, 60.0)
        assert rebuilt.slos == config.slos
        assert rebuilt.rules == config.rules
        assert MonitorConfig.from_value(False).enabled is False
        assert MonitorConfig.from_value(None).enabled is True

    def test_latency_breach_drives_full_lifecycle_with_exemplar(self):
        metrics = ServerMetrics()
        clock = FakeClock()
        monitor = Monitor(
            metrics.history_sample,
            {"interval_s": 1.0, "windows": (10.0, 30.0, 60.0),
             "for_s": 5.0, "resolve_s": 5.0},
            clock=clock,
            exemplar_source=lambda spec: metrics.exemplar_for(
                spec.metric, spec.threshold_s))
        monitor.tick()
        states = []
        # Breach: every job 3.5s against the 2s objective.
        for index in range(15):
            clock.advance(1.0)
            metrics.observe_job(0.01, 3.5, ok=True, cache_hit=False,
                                trace_id=f"slowtrace{index:02d}")
            states.extend(monitor.tick())
        firing = [e for e in states if e["state"] == "firing"]
        assert firing, [e["state"] for e in states]
        assert firing[0]["slo"] == "job-latency"
        assert firing[0]["exemplar_trace_id"].startswith("slowtrace")
        # Recovery: fast jobs dilute the short window under threshold.
        for _ in range(120):
            clock.advance(1.0)
            for _ in range(20):
                metrics.observe_job(0.001, 0.01, ok=True, cache_hit=False)
            states.extend(monitor.tick())
        assert any(e["state"] == "resolved" for e in states)
        assert monitor.alerts.firing_count() == 0

    def test_disabled_monitor_does_not_start(self):
        monitor = Monitor(ServerMetrics().history_sample, False)
        monitor.start()
        assert monitor._thread is None
        assert monitor.status()["enabled"] is False


# --------------------------------------------------------------------------- #
# Dashboard renderer
# --------------------------------------------------------------------------- #
class TestDashboard:
    def test_sparkline_shapes(self):
        assert sparkline([]) == " " * 24
        line = sparkline([0, 1, 2, 4], width=4)
        assert len(line) == 4
        assert line[-1] == "█"

    def test_render_survives_missing_payloads(self):
        frame = render_dashboard(url="http://x", health=None, history=None,
                                 slo=None, alerts=None, color=False)
        assert "unreachable" in frame

    def test_render_full_frame(self):
        health = {"status": "ok", "uptime_s": 12.0, "workers": 2,
                  "queue_depth": 1, "jobs_in_flight": 2,
                  "process": {"rss_bytes": 52_000_000, "threads": 9}}
        history = {"windows": {"1m": {
            "jobs_per_s": 4.2, "error_rate": 0.0,
            "histograms": {"service_seconds": {
                "count": 10, "p50": 0.1, "p95": 1.2}}}},
            "series": {"t": [1, 2], "jobs_per_s": [1.0, 2.0],
                       "service_p95_s": [0.1, 0.2], "queue_depth": [0, 1],
                       "error_rate": [0.0, 0.0]}}
        slo = {"slos": {"job-latency": {
            "compliant": False,
            "budget": {"window": "1m", "remaining_fraction": 0.25}}}}
        alerts = {"firing": 1, "active": [{
            "state": "firing", "rule": "job-latency-fast-burn",
            "burn_rates": {"1m": 8.2}, "exemplar_trace_id": "abc123"}]}
        frame = render_dashboard(url="http://x", health=health,
                                 history=history, slo=slo, alerts=alerts,
                                 color=False)
        assert "4.20 jobs/s" in frame
        assert "25.0%" in frame
        assert "repro trace abc123" in frame
        assert "1 firing" in frame


# --------------------------------------------------------------------------- #
# HTTP surfacing: server, gateway, CLI
# --------------------------------------------------------------------------- #
def _monitor_off():
    """Config that never self-ticks (huge interval) so tests drive ticks."""
    return {"interval_s": 3600.0, "windows": (10.0, 30.0, 60.0),
            "for_s": 0.0, "resolve_s": 0.0}


class TestServerEndpoints:
    def test_history_slo_alerts_endpoints(self):
        with CompileServer(port=0, workers=1,
                           monitor=_monitor_off()) as server:
            client = CompileClient(server.url)
            assert client.compile(_job(3)).ok
            server.monitor.tick()
            assert client.compile(_job(4)).ok
            server.monitor.tick()
            history = client.metrics_history()
            assert history["monitor"] == "server"
            assert history["samples"] == 2
            view = history["windows"]["10s"]
            assert view["counters"]["completed"] >= 1.0
            slo = client.slo()
            assert set(slo["slos"]) == {"job-latency", "job-availability"}
            alerts = client.alerts(limit=5)
            assert alerts["firing"] == 0
            assert alerts["rules"]

    def test_disabled_monitor_returns_503(self):
        with CompileServer(port=0, workers=1, monitor=False) as server:
            client = CompileClient(server.url, retries=0)
            with pytest.raises(ServerError) as excinfo:
                client.metrics_history()
            assert excinfo.value.status == 503

    def test_process_gauges_in_metrics_and_healthz(self):
        with CompileServer(port=0, workers=1,
                           monitor=_monitor_off()) as server:
            client = CompileClient(server.url)
            samples = client.metrics()
            assert samples["repro_server_process_threads"] >= 1.0
            assert samples["repro_server_process_rss_bytes"] >= 0.0
            assert samples["repro_server_uptime_seconds"] >= 0.0
            assert 0.0 <= samples["repro_server_worker_utilization"] <= 1.0
            assert "repro_server_trace_span_ring_utilization" in samples
            assert "repro_server_queue_saturation" in samples
            health = client.health()
            assert health["process"]["threads"] >= 1
            assert health["monitor"]["enabled"] is True
            assert health["monitor"]["rules"] > 0


class TestGatewayEndpoints:
    def test_fleet_merged_history_slo_alerts(self):
        with CompileServer(port=0, workers=1,
                           monitor=_monitor_off()) as shard_a, \
                CompileServer(port=0, workers=1,
                              monitor=_monitor_off()) as shard_b:
            with ClusterGateway([shard_a.url, shard_b.url],
                                health_interval=30.0,
                                monitor=_monitor_off()) as gateway:
                client = CompileClient(gateway.url)
                gateway.monitor.tick()
                for size in (3, 4, 5, 6):
                    assert client.compile(_job(size)).ok
                gateway.monitor.tick()
                history = client.metrics_history()
                assert history["monitor"] == "gateway"
                view = history["windows"]["10s"]
                assert view["counters"]["completed"] == 4.0
                assert view["gauges"]["shards_alive"] == 2.0
                assert view["gauges"]["shards_total"] == 2.0
                slo = client.slo()
                assert slo["monitor"] == "gateway"
                alerts = client.alerts()
                assert alerts["shards_polled"] == 2
                assert alerts["firing"] == 0

    def test_gateway_merges_shard_alert_events(self):
        with CompileServer(port=0, workers=1,
                           monitor=_monitor_off()) as shard:
            shard.monitor.tick()  # clean baseline snapshot
            # Force a shard-local availability breach with synthetic jobs.
            for index in range(10):
                shard.metrics.observe_job(0.01, 0.02, ok=False,
                                          cache_hit=False,
                                          trace_id=f"fail{index}")
            shard.monitor.recorder.clock = lambda: 9e9  # jump time forward
            shard.monitor.alerts.clock = lambda: 9e9
            shard.monitor.tick()
            with ClusterGateway([shard.url], health_interval=30.0,
                                monitor=_monitor_off()) as gateway:
                merged = gateway.merged_alerts(limit=20)
                shard_events = [event for event in merged["events"]
                                if event.get("shard")]
                assert shard_events, merged["events"]
                assert merged["firing"] >= 1


class TestCLI:
    def test_trace_not_found_404_exits_2(self, capsys):
        from repro.cli import main
        with CompileServer(port=0, workers=1, monitor=False) as server:
            code = main(["trace", "nonexistent-trace-id",
                         "--url", server.url])
        assert code == 2
        assert "no trace found" in capsys.readouterr().err

    def test_trace_empty_spans_exits_2(self, capsys, monkeypatch):
        # Regression: a 200 payload with an empty span list used to render
        # nothing and exit 0.
        from repro import cli as cli_module
        from repro.server.client import CompileClient as RealClient
        monkeypatch.setattr(
            RealClient, "trace",
            lambda self, ident: {"trace_id": ident, "spans": []})
        code = cli_module.main(["trace", "emptytrace",
                                "--url", "http://127.0.0.1:1"])
        assert code == 2
        assert "no trace found" in capsys.readouterr().err

    def test_slo_alerts_and_top_once(self, capsys):
        from repro.cli import main
        with CompileServer(port=0, workers=1,
                           monitor=_monitor_off()) as server:
            client = CompileClient(server.url)
            assert client.compile(_job(3)).ok
            server.monitor.tick()
            assert main(["slo", "--url", server.url]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert "job-latency" in payload["slos"]
            assert main(["alerts", "--url", server.url]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["firing"] == 0
            assert main(["top", "--url", server.url, "--once",
                         "--no-color"]) == 0
            frame = capsys.readouterr().out
            assert "repro top" in frame
            assert "error budgets" in frame
            assert "\x1b[31m" not in frame  # --no-color means no ANSI colors
