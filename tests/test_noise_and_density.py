"""Tests for noise channels, the density-matrix simulator and fidelity evaluation."""


import numpy as np
import pytest

from repro.arch.durations import GateDurationMap
from repro.core.circuit import Circuit
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.fidelity import circuit_fidelity, routed_fidelity
from repro.sim.noise import (
    NoiseModel,
    amplitude_damping_kraus,
    dephasing_kraus,
    depolarizing_kraus,
)
from repro.sim.statevector import StatevectorSimulator

DUR = GateDurationMap(single=1, two=2, swap=6)


def _is_cptp(kraus) -> bool:
    total = sum(k.conj().T @ k for k in kraus)
    return np.allclose(total, np.eye(total.shape[0]), atol=1e-10)


class TestKrausChannels:
    @pytest.mark.parametrize("gamma", [0.0, 0.1, 0.5, 1.0])
    def test_amplitude_damping_trace_preserving(self, gamma):
        assert _is_cptp(amplitude_damping_kraus(gamma))

    @pytest.mark.parametrize("lam", [0.0, 0.3, 1.0])
    def test_dephasing_trace_preserving(self, lam):
        assert _is_cptp(dephasing_kraus(lam))

    @pytest.mark.parametrize("p", [0.0, 0.2, 1.0])
    def test_depolarizing_trace_preserving(self, p):
        assert _is_cptp(depolarizing_kraus(p))

    def test_parameter_range_checked(self):
        with pytest.raises(ValueError):
            amplitude_damping_kraus(1.5)
        with pytest.raises(ValueError):
            dephasing_kraus(-0.1)


class TestNoiseModel:
    def test_noiseless_model(self):
        model = NoiseModel.noiseless()
        assert model.is_noiseless
        assert model.idle_channels(10.0) == []

    def test_dephasing_dominant(self):
        model = NoiseModel.dephasing_dominant(t2=100)
        channels = model.idle_channels(10.0)
        assert len(channels) == 1  # only the dephasing channel
        assert not model.is_noiseless

    def test_damping_dominant(self):
        model = NoiseModel.damping_dominant(t1=100)
        assert len(model.idle_channels(10.0)) == 1

    def test_noise_grows_with_duration(self):
        model = NoiseModel.dephasing_dominant(t2=50)
        short = model.idle_channels(1.0)[0][1]
        long = model.idle_channels(25.0)[0][1]
        assert np.linalg.norm(long) > np.linalg.norm(short)

    def test_gate_error_added_for_two_qubit_gates(self):
        model = NoiseModel(t2=100, gate_error_2q=0.01)
        assert len(model.gate_channels(2.0, num_qubits=2)) == 2
        assert len(model.gate_channels(2.0, num_qubits=1)) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NoiseModel(t1=-1)
        with pytest.raises(ValueError):
            NoiseModel(gate_error_1q=2.0)


class TestDensityMatrixSimulator:
    def test_noiseless_matches_statevector(self):
        circ = Circuit(3).h(0).cx(0, 1).t(1).cx(1, 2)
        rho = DensityMatrixSimulator().run(circ, DUR)
        state = StatevectorSimulator().run(circ)
        assert np.allclose(rho, np.outer(state, state.conj()), atol=1e-9)

    def test_trace_preserved_under_noise(self):
        circ = Circuit(2).h(0).cx(0, 1).cx(0, 1).h(1)
        noise = NoiseModel(t1=20, t2=15, gate_error_2q=0.01)
        rho = DensityMatrixSimulator(noise).run(circ, DUR)
        assert np.trace(rho).real == pytest.approx(1.0)
        # Hermitian and positive semi-definite (eigenvalues >= -eps).
        assert np.allclose(rho, rho.conj().T)
        assert min(np.linalg.eigvalsh(rho)) > -1e-9

    def test_noise_reduces_purity(self):
        circ = Circuit(2).h(0).cx(0, 1)
        noisy = DensityMatrixSimulator(NoiseModel(t2=10)).run(circ, DUR)
        assert DensityMatrixSimulator.purity(noisy) < 1.0

    def test_damping_decays_excited_state(self):
        circ = Circuit(1).x(0)
        # Add idle time by scheduling a long identity tail via durations.
        noise = NoiseModel.damping_dominant(t1=5)
        rho = DensityMatrixSimulator(noise).run(circ, DUR)
        assert rho[1, 1].real < 1.0
        assert rho[0, 0].real > 0.0

    def test_dephasing_kills_coherence_not_population(self):
        circ = Circuit(1).h(0)
        noise = NoiseModel.dephasing_dominant(t2=2)
        rho = DensityMatrixSimulator(noise).run(circ, DUR)
        assert rho[0, 0].real == pytest.approx(0.5, abs=1e-6)
        assert abs(rho[0, 1]) < 0.5

    def test_longer_schedule_means_lower_fidelity(self):
        # Two circuits with the same gates; the second serialises them.
        parallel = Circuit(4).h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3)
        serial = Circuit(4).h(0).h(1).h(2).h(3).cx(0, 1).cx(1, 2).cx(1, 2).cx(2, 3)
        noise = NoiseModel.dephasing_dominant(t2=30)
        f_parallel = circuit_fidelity(parallel, DUR, noise)
        f_serial = circuit_fidelity(serial, DUR, noise)
        assert f_parallel > f_serial

    def test_qubit_limit_enforced(self):
        simulator = DensityMatrixSimulator(max_qubits=2)
        with pytest.raises(ValueError):
            simulator.run(Circuit(3).h(0), DUR)


class TestRoutedFidelity:
    def _routed(self, router_cls):
        from repro.arch.devices import get_device
        from repro.workloads import ghz

        device = get_device("grid", rows=2, cols=2)
        return router_cls().run(ghz(4), device)

    def test_noiseless_routed_fidelity_is_one(self):
        from repro.mapping.codar.remapper import CodarRouter

        result = self._routed(CodarRouter)
        fidelity = routed_fidelity(result, NoiseModel.noiseless())
        assert fidelity == pytest.approx(1.0, abs=1e-9)

    def test_noisy_fidelity_below_one_and_positive(self):
        from repro.mapping.sabre.remapper import SabreRouter

        result = self._routed(SabreRouter)
        fidelity = routed_fidelity(result, NoiseModel.dephasing_dominant(t2=50))
        assert 0.0 < fidelity < 1.0

    def test_circuit_fidelity_noiseless_is_one(self):
        circ = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        assert circuit_fidelity(circ, DUR, NoiseModel.noiseless()) == pytest.approx(1.0)

    def test_large_device_rejected(self):
        from repro.arch.devices import get_device
        from repro.mapping.codar.remapper import CodarRouter
        from repro.workloads import ghz

        result = CodarRouter().run(ghz(4), get_device("ibm_q20_tokyo"))
        with pytest.raises(ValueError):
            routed_fidelity(result, NoiseModel.noiseless())
