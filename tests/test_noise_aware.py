"""Tests for the noise-aware CODAR extension (edge-fidelity aware routing)."""

import pytest

from repro.arch.coupling import CouplingGraph
from repro.arch.devices import get_device
from repro.core.circuit import Circuit
from repro.mapping.codar.noise_aware import (EdgeFidelityMap, NoiseAwareCodarRouter,
                                             NoiseAwareConfig)
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.sabre.remapper import reverse_traversal_layout
from repro.mapping.verification import verify_routing
from repro.workloads import generators as gen


# --------------------------------------------------------------------------- #
# EdgeFidelityMap
# --------------------------------------------------------------------------- #
class TestEdgeFidelityMap:
    def test_default_applies_to_unknown_edges(self):
        fmap = EdgeFidelityMap(default=0.95)
        assert fmap.get(3, 7) == 0.95

    def test_set_and_get_are_orientation_insensitive(self):
        fmap = EdgeFidelityMap()
        fmap.set(2, 5, 0.91)
        assert fmap.get(5, 2) == pytest.approx(0.91)

    def test_swap_fidelity_is_cubed(self):
        fmap = EdgeFidelityMap({(0, 1): 0.9})
        assert fmap.swap_fidelity(0, 1) == pytest.approx(0.9 ** 3)

    def test_rejects_invalid_fidelities(self):
        with pytest.raises(ValueError):
            EdgeFidelityMap({(0, 1): 0.0})
        with pytest.raises(ValueError):
            EdgeFidelityMap({(0, 1): 1.5})
        with pytest.raises(ValueError):
            EdgeFidelityMap(default=0.0)

    def test_uniform_covers_every_coupling_edge(self):
        coupling = CouplingGraph.grid(3, 3)
        fmap = EdgeFidelityMap.uniform(coupling, 0.97)
        assert len(fmap) == coupling.num_edges
        assert all(fmap.get(*edge) == 0.97 for edge in coupling.edges)

    def test_randomized_is_seeded_and_within_bounds(self):
        coupling = CouplingGraph.grid(3, 3)
        a = EdgeFidelityMap.randomized(coupling, mean=0.96, spread=0.03, seed=7)
        b = EdgeFidelityMap.randomized(coupling, mean=0.96, spread=0.03, seed=7)
        for edge in coupling.edges:
            assert a.get(*edge) == b.get(*edge)
            assert 0.93 <= a.get(*edge) <= 0.99


# --------------------------------------------------------------------------- #
# Router behaviour
# --------------------------------------------------------------------------- #
class TestNoiseAwareRouter:
    def test_routed_circuits_verify(self):
        device = get_device("ibm_q20_tokyo")
        fidelities = EdgeFidelityMap.randomized(device.coupling, seed=3)
        router = NoiseAwareCodarRouter(fidelities)
        for circuit in (gen.qft(6), gen.bernstein_vazirani(7),
                        gen.random_circuit(8, 150, seed=5)):
            verify_routing(router.run(circuit, device))

    def test_reports_swap_fidelity_product(self):
        device = get_device("ibm_q16_melbourne")
        fidelities = EdgeFidelityMap.uniform(device.coupling, 0.95)
        result = NoiseAwareCodarRouter(fidelities).run(gen.qft(6), device)
        product = result.extra["swap_fidelity_product"]
        assert product == pytest.approx(0.95 ** (3 * result.swap_count))

    def test_uniform_fidelities_match_stock_codar(self):
        """With identical edge fidelities the refinements change nothing."""
        device = get_device("ibm_q20_tokyo")
        circuit = gen.qft(6)
        layout = reverse_traversal_layout(circuit, device)
        stock = CodarRouter().run(circuit, device, initial_layout=layout)
        fidelities = EdgeFidelityMap.uniform(device.coupling, 0.97)
        aware = NoiseAwareCodarRouter(
            fidelities, NoiseAwareConfig(fidelity_floor=0.0)).run(
                circuit, device, initial_layout=layout)
        assert aware.routed.gates == stock.routed.gates

    def test_avoids_a_single_bad_edge_when_tied(self):
        """A clearly inferior edge should lose ties against an equal-priority one."""
        device = get_device("grid", rows=3, cols=3)
        # A CX between opposite corners gives symmetric SWAP candidates; poison
        # every edge incident to physical qubit 1 so the router prefers the
        # route through qubit 3 (the symmetric alternative).
        fidelities = EdgeFidelityMap(default=0.99)
        for neighbour in device.coupling.neighbors(1):
            fidelities.set(1, neighbour, 0.80)
        circuit = Circuit(9).cx(0, 8)
        router = NoiseAwareCodarRouter(
            fidelities, NoiseAwareConfig(fidelity_floor=0.0))
        result = router.run(circuit, device, layout_strategy="identity")
        verify_routing(result)
        for gate in result.routed.gates:
            if gate.is_routing_swap:
                assert 1 not in gate.qubits

    def test_fidelity_floor_filters_bad_edges(self):
        device = get_device("grid", rows=3, cols=3)
        fidelities = EdgeFidelityMap(default=0.99)
        for neighbour in device.coupling.neighbors(4):  # centre qubit
            fidelities.set(4, neighbour, 0.5)
        circuit = Circuit(9).cx(0, 8)
        router = NoiseAwareCodarRouter(
            fidelities, NoiseAwareConfig(fidelity_floor=0.9))
        result = router.run(circuit, device, layout_strategy="identity")
        verify_routing(result)
        for gate in result.routed.gates:
            if gate.is_routing_swap:
                assert 4 not in gate.qubits

    def test_floor_never_strands_the_router(self):
        """Even when every edge is below the floor the circuit still routes."""
        device = get_device("line", num_qubits=5)
        fidelities = EdgeFidelityMap.uniform(device.coupling, 0.5)
        router = NoiseAwareCodarRouter(
            fidelities, NoiseAwareConfig(fidelity_floor=0.99))
        result = router.run(Circuit(5).cx(0, 4), device,
                            layout_strategy="identity")
        verify_routing(result)
        assert result.swap_count > 0

    def test_router_name_distinct(self):
        assert NoiseAwareCodarRouter().name == "codar_noise_aware"
        assert CodarRouter().name == "codar"
