"""Observability layer: trace context, spans, store, logging, profiler,
renderer — plus end-to-end HTTP trace propagation and gateway stitching.

The HTTP tests run real :class:`~repro.server.http.CompileServer` instances
(and a real :class:`~repro.cluster.gateway.ClusterGateway`) on ephemeral
ports inside the test process, driven through the unchanged ``urllib``
:class:`~repro.server.client.CompileClient` — so one assertion covers the
whole propagation chain: header minted at the client, parsed by the
gateway, re-emitted to the shard, threaded through the queue ticket into
the scheduler worker and every pipeline stage.
"""

import io
import json
import threading
import time

import pytest

from repro.cluster import ClusterGateway
from repro.obs import (TraceContext, activate, configure, configure_store,
                       critical_path, current_trace, get_logger, get_store,
                       recent, record_span, render_trace, span)
from repro.obs.logging import STDERR
from repro.obs.profile import SamplingProfiler, profile_window
from repro.obs.store import SpanStore
from repro.server import CompileClient, CompileServer, ServerError
from repro.service import make_job
from repro.workloads.generators import ghz

DEVICE = "ibm_q20_tokyo"


def _job(n: int = 3, router: str = "codar", **kwargs):
    return make_job(ghz(n), DEVICE, router, **kwargs)


@pytest.fixture(autouse=True)
def _isolated_obs():
    """A quiet sink and an empty span ring per test; defaults restored."""
    configure(sink=None, level="info")
    get_store().clear()
    yield
    configure(sink=STDERR, level="info")
    configure_store(4096)
    get_store().clear()


# --------------------------------------------------------------------------- #
# TraceContext propagation
# --------------------------------------------------------------------------- #
class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext.new(tenant="t1").child_of("ab12cd34ab12cd34")
        parsed = TraceContext.from_header(context.to_header())
        assert parsed == context

    def test_header_without_active_span(self):
        context = TraceContext.new()
        parsed = TraceContext.from_header(context.to_header())
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == ""

    @pytest.mark.parametrize("header", [
        None, "", "not-hex-at-all", "UPPER-abcd", "xyz;k=v", "-", ";;;",
    ])
    def test_malformed_header_is_treated_as_missing(self, header):
        assert TraceContext.from_header(header) is None

    def test_bad_span_id_is_dropped_but_trace_survives(self):
        parsed = TraceContext.from_header("abcdef0123456789-NOTHEX;k=v")
        assert parsed.trace_id == "abcdef0123456789"
        assert parsed.span_id == ""
        assert parsed.baggage == {"k": "v"}

    def test_activate_scopes_the_current_trace(self):
        assert current_trace() is None
        context = TraceContext.new()
        with activate(context):
            assert current_trace() is context
        assert current_trace() is None


# --------------------------------------------------------------------------- #
# span() / record_span()
# --------------------------------------------------------------------------- #
class TestSpans:
    def test_span_is_a_noop_when_untraced(self):
        with span("anything", key="value") as entry:
            assert entry is None
        assert len(get_store()) == 0

    def test_nested_spans_record_a_parent_chain(self):
        with activate(TraceContext.new()) as context:
            with span("outer") as outer:
                with span("inner", depth=2) as inner:
                    pass
        rows = get_store().trace(context.trace_id)
        assert [row["name"] for row in rows] == ["outer", "inner"]
        assert rows[0]["parent_id"] == ""
        assert rows[1]["parent_id"] == outer.span_id
        assert inner.attributes == {"depth": 2}
        assert all(row["end"] >= row["start"] for row in rows)

    def test_exception_stamps_error_and_still_records(self):
        with activate(TraceContext.new()) as context:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (row,) = get_store().trace(context.trace_id)
        assert row["attributes"]["error"] == "ValueError"
        assert row["end"] is not None

    def test_record_span_backdates_explicit_intervals(self):
        context = TraceContext.new().child_of("ab12cd34ab12cd34")
        entry = record_span("queue.wait", trace=context,
                            start=100.0, end=100.5, priority=3)
        assert entry.parent_id == "ab12cd34ab12cd34"
        (row,) = get_store().trace(context.trace_id)
        assert row["name"] == "queue.wait"
        assert row["duration_s"] == pytest.approx(0.5)
        assert row["attributes"]["priority"] == 3


# --------------------------------------------------------------------------- #
# SpanStore
# --------------------------------------------------------------------------- #
class TestSpanStore:
    def _span(self, trace_id: str, start: float, name: str = "s", **attrs):
        from repro.obs.trace import Span, new_span_id

        return Span(trace_id=trace_id, span_id=new_span_id(), parent_id="",
                    name=name, start=start, end=start + 0.01,
                    attributes=attrs)

    def test_ring_eviction_stays_bounded(self):
        store = SpanStore(max_spans=10)
        for index in range(50):
            store.add(self._span(f"trace{index:04d}", float(index)))
        assert len(store) == 10
        assert store.evicted == 40
        stats = store.stats()
        assert stats["spans"] == 10 and stats["traces"] == 10
        # the oldest went first: only the newest ten trace ids survive
        assert store.trace("trace0000") == []
        assert len(store.trace("trace0049")) == 1

    def test_find_trace_by_key_and_prefix(self):
        store = SpanStore()
        key = "deadbeefcafe0123"
        store.add(self._span("older" * 4, 1.0, job_key=key))
        store.add(self._span("newer" * 4, 2.0, job_key=key))
        assert store.find_trace(key) == "newer" * 4      # newest wins
        assert store.find_trace(key[:8]) == "newer" * 4  # >= 8-char prefix
        assert store.find_trace(key[:4]) is None         # too short
        assert store.find_trace("0123456789abcdef") is None
        assert store.find_trace("") is None

    def test_summaries_digest_each_trace(self):
        store = SpanStore()
        store.add(self._span("a" * 32, 10.0, name="root", job_key="k1"))
        store.add(self._span("a" * 32, 10.5, name="late"))
        store.add(self._span("b" * 32, 20.0, name="other"))
        rows = store.summaries()
        assert [row["trace_id"] for row in rows] == ["b" * 32, "a" * 32]
        digest = rows[1]
        assert digest["root"] == "root" and digest["spans"] == 2
        assert digest["job_keys"] == ["k1"]
        assert digest["duration_s"] == pytest.approx(0.51)
        assert store.summaries(limit=1) == rows[:1]

    def test_configure_store_resizes_keeping_newest(self):
        for index in range(8):
            get_store().add(self._span(f"t{index}" * 8, float(index)))
        resized = configure_store(3)
        assert resized is get_store()
        assert len(resized) == 3
        assert resized.trace("t7" * 8) != []
        assert resized.trace("t0" * 8) == []


# --------------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------------- #
class TestStructuredLogging:
    def test_below_threshold_records_nothing(self):
        logger = get_logger("test.obs")
        assert logger.debug("invisible") is None
        configure(level="debug")
        record = logger.debug("visible", detail=1)
        assert record is not None and record["detail"] == 1

    def test_records_are_stamped_with_the_active_trace(self):
        logger = get_logger("test.obs")
        bare = logger.info("untraced")
        assert "trace_id" not in bare
        with activate(TraceContext.new()) as context:
            stamped = logger.info("traced")
        assert stamped["trace_id"] == context.trace_id

    def test_sink_receives_one_json_line_per_record(self):
        sink = io.StringIO()
        configure(sink=sink)
        get_logger("test.obs").warning("disk_full", free_mb=12)
        (line,) = sink.getvalue().splitlines()
        record = json.loads(line)
        assert record["event"] == "disk_full"
        assert record["level"] == "warning"
        assert record["component"] == "test.obs"
        assert record["free_mb"] == 12

    def test_ring_keeps_recent_records_even_when_silenced(self):
        get_logger("test.obs").info("ringed", n=7)
        rows = recent()
        assert rows and rows[-1]["event"] == "ringed"

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure(level="shout")


# --------------------------------------------------------------------------- #
# Sampling profiler
# --------------------------------------------------------------------------- #
class TestSamplingProfiler:
    @staticmethod
    def _busy(deadline_s: float = 0.08) -> int:
        total, deadline = 0, time.perf_counter() + deadline_s
        while time.perf_counter() < deadline:
            total += sum(range(100))
        return total

    def test_profile_window_samples_the_calling_thread(self):
        result, report = profile_window(self._busy, interval_s=0.002)
        assert result > 0
        assert report.samples > 0
        assert report.stopped_at is not None
        top = report.top(3)
        assert top and top[0]["samples"] >= 1
        stacks = [frame for row in top for frame in row["stack"]]
        assert any("_busy" in frame for frame in stacks)
        payload = report.as_dict()
        assert payload["samples"] == report.samples
        assert json.dumps(payload)  # JSON-safe for the job.profile span

    def test_targeted_sampling_ignores_other_threads(self):
        stop = threading.Event()

        def distinctively_named_noise_loop():
            stop.wait()

        noise = threading.Thread(target=distinctively_named_noise_loop,
                                 daemon=True)
        noise.start()
        profiler = SamplingProfiler(interval_s=0.002)
        profiler.start((threading.get_ident(),))
        self._busy(0.05)
        report = profiler.stop()
        stop.set()
        noise.join(1.0)
        stacks = [frame for stack in report.stacks for frame in stack]
        assert report.samples > 0
        assert not any("distinctively_named_noise_loop" in frame
                       for frame in stacks)

    def test_double_start_and_idle_stop_are_errors(self):
        profiler = SamplingProfiler(interval_s=0.01)
        with pytest.raises(RuntimeError):
            profiler.stop()
        profiler.start((threading.get_ident(),))
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)


# --------------------------------------------------------------------------- #
# Renderer + critical path
# --------------------------------------------------------------------------- #
class TestRenderer:
    @staticmethod
    def _row(span_id, parent, name, start, end, **attrs):
        return {"trace_id": "t" * 32, "span_id": span_id, "parent_id": parent,
                "name": name, "start": start, "end": end,
                "duration_s": end - start, "attributes": attrs}

    def _tree(self):
        return [
            self._row("r1", "", "client.request", 0.0, 1.0),
            self._row("s1", "r1", "server.request", 0.1, 0.9, status=200),
            self._row("q1", "s1", "queue.wait", 0.1, 0.2),
            self._row("j1", "s1", "job.execute", 0.2, 0.85),
            self._row("p1", "j1", "stage.parse", 0.2, 0.3),
            self._row("p2", "j1", "stage.route", 0.3, 0.8, router="codar"),
        ]

    def test_critical_path_descends_into_latest_finisher(self):
        assert critical_path(self._tree()) == {"r1", "s1", "j1", "p2"}

    def test_critical_path_of_nothing_is_empty(self):
        assert critical_path([]) == set()

    def test_render_marks_the_path_and_footers_it(self):
        text = render_trace("t" * 32, self._tree())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {'t' * 32}  spans=6")
        starred = [line for line in lines if line.startswith("*")]
        assert len(starred) == 4
        assert any("router=codar" in line for line in starred)
        assert lines[-1] == ("critical path: client.request > "
                             "server.request > job.execute > stage.route")

    def test_orphaned_parents_render_as_roots(self):
        rows = [self._row("x1", "gone", "stranded", 0.0, 0.5)]
        text = render_trace("t" * 32, rows)
        assert "stranded" in text
        assert critical_path(rows) == {"x1"}

    def test_empty_trace_renders_a_message(self):
        assert render_trace("abc", []) == "trace abc: no spans"


# --------------------------------------------------------------------------- #
# End-to-end over HTTP: client -> server -> queue -> pipeline
# --------------------------------------------------------------------------- #
class TestHTTPTracePropagation:
    def test_one_trace_id_spans_client_to_pipeline(self):
        with CompileServer(port=0, workers=2) as server:
            client = CompileClient(server.url)
            outcome = client.compile(_job(4))
            assert outcome.ok
            trace_id = client.last_trace_id
            payload = client.trace(trace_id)
        assert payload["trace_id"] == trace_id
        spans = payload["spans"]
        assert all(row["trace_id"] == trace_id for row in spans)
        names = [row["name"] for row in spans]
        for expected in ("client.request", "server.request", "queue.wait",
                         "job.execute", "stage.parse", "stage.route"):
            assert expected in names, names
        by_name = {row["name"]: row for row in spans}
        assert (by_name["server.request"]["parent_id"]
                == by_name["client.request"]["span_id"])
        assert (by_name["job.execute"]["parent_id"]
                == by_name["server.request"]["span_id"])
        assert by_name["queue.wait"]["start"] <= by_name["job.execute"]["start"]
        assert by_name["job.execute"]["attributes"]["status"] == "ok"

    def test_key_prefix_resolves_like_a_short_hash(self):
        job = _job(3)
        with CompileServer(port=0, workers=1) as server:
            client = CompileClient(server.url)
            assert client.compile(job).ok
            payload = client.trace(job.key[:12])
        assert payload["trace_id"] == client.last_trace_id

    def test_caller_supplied_context_wins_over_minting(self):
        with CompileServer(port=0, workers=1) as server:
            client = CompileClient(server.url)
            with activate(TraceContext.new()) as outer:
                assert client.compile(_job(5)).ok
            assert client.last_trace_id == outer.trace_id
            assert client.trace(outer.trace_id)["spans"]

    def test_traces_index_lists_digests_and_ring_stats(self):
        with CompileServer(port=0, workers=1) as server:
            client = CompileClient(server.url)
            assert client.compile(_job(3)).ok
            listing = client.traces(limit=10)
            health = client.health()
        assert listing["traces"][0]["spans"] >= 1
        assert listing["store"]["max_spans"] >= 1
        assert health["traces"]["spans"] >= 1

    def test_coalesced_follower_links_to_the_leader_trace(self):
        # Pause the scheduler so the leader is provably still queued when its
        # twin arrives: the second submission must coalesce instead of
        # executing.  The lone worker may already be blocked inside
        # ``queue.pop`` when the gate clears and will still grab one ticket —
        # the filler absorbs that pop (the worker re-checks the gate before
        # popping again), so the leader cannot start until ``resume``.
        with CompileServer(port=0, workers=1) as server:
            client = CompileClient(server.url)
            server.scheduler.pause()
            client.submit(_job(10))                   # absorbs the in-flight pop
            leader = client.submit(_job(6, seed=99))
            follower = client.submit(_job(6, seed=99))
            assert not leader["coalesced"]
            assert follower["coalesced"]
            server.scheduler.resume()
            assert client.outcome(leader["key"], wait=True, timeout=60.0).ok
            follower_spans = client.trace(follower["trace_id"])["spans"]
            leader_spans = client.trace(leader["trace_id"])["spans"]
        follower_request = next(row for row in follower_spans
                                if row["name"] == "server.request")
        assert follower_request["attributes"]["coalesced"] is True
        assert (follower_request["attributes"]["leader_trace_id"]
                == leader["trace_id"])
        # the shared execution lives in the leader's trace, not the follower's
        leader_names = [row["name"] for row in leader_spans]
        follower_names = [row["name"] for row in follower_spans]
        assert "job.execute" in leader_names
        assert "job.execute" not in follower_names

    def test_server_ring_stays_bounded_under_load(self):
        with CompileServer(port=0, workers=2, trace_max_spans=12) as server:
            client = CompileClient(server.url)
            for seed in range(6):
                assert client.compile(_job(3, seed=seed)).ok
            stats = client.health()["traces"]
        assert stats["max_spans"] == 12
        assert stats["spans"] <= 12
        assert stats["evicted"] > 0

    def test_untraced_get_polls_record_no_spans(self):
        with CompileServer(port=0, workers=1) as server:
            client = CompileClient(server.url)
            client.health()
            client.metrics()
            with pytest.raises(ServerError):
                client.status("no-such-key")
        assert len(get_store()) == 0


# --------------------------------------------------------------------------- #
# End-to-end over HTTP: gateway stitching
# --------------------------------------------------------------------------- #
class TestGatewayStitching:
    def test_stitched_trace_crosses_the_gateway(self):
        with CompileServer(port=0, workers=1) as shard_a, \
                CompileServer(port=0, workers=1) as shard_b:
            with ClusterGateway([shard_a.url, shard_b.url],
                                health_interval=30.0) as gateway:
                client = CompileClient(gateway.url)
                assert client.compile(_job(4, seed=7)).ok
                payload = client.trace(client.last_trace_id)
        assert payload["shards_polled"] == 2
        spans = payload["spans"]
        names = [row["name"] for row in spans]
        for expected in ("client.request", "gateway.request",
                         "gateway.proxy", "server.request",
                         "queue.wait", "job.execute"):
            assert expected in names, names
        by_name = {row["name"]: row for row in spans}
        assert (by_name["gateway.request"]["parent_id"]
                == by_name["client.request"]["span_id"])
        assert (by_name["gateway.proxy"]["parent_id"]
                == by_name["gateway.request"]["span_id"])
        assert (by_name["server.request"]["parent_id"]
                == by_name["gateway.proxy"]["span_id"])
        # stitching dedupes by span id even with in-process shared stores
        span_ids = [row["span_id"] for row in spans]
        assert len(span_ids) == len(set(span_ids))

    def test_gateway_renders_with_a_cross_process_critical_path(self):
        with CompileServer(port=0, workers=1) as shard:
            with ClusterGateway([shard.url],
                                health_interval=30.0) as gateway:
                client = CompileClient(gateway.url)
                assert client.compile(_job(3, seed=11)).ok
                payload = client.trace(client.last_trace_id)
        text = render_trace(payload["trace_id"], payload["spans"])
        assert "critical path: client.request > gateway.request" in text
