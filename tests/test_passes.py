"""Tests for the decomposition, optimisation and transpile pipeline passes."""

import math

import numpy as np
import pytest

from repro.arch.devices import get_device
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.unitary import circuit_unitary
from repro.passes import (
    BASIS_IBM,
    BASIS_ION_TRAP,
    cancel_adjacent_inverses,
    decompose_swaps,
    decompose_to_basis,
    merge_rotations,
    optimize_circuit,
    remove_trivial_gates,
    transpile,
)
from repro.workloads import qft


def equal_up_to_phase(circuit_a: Circuit, circuit_b: Circuit) -> bool:
    a = circuit_unitary(circuit_a.without_measurements())
    b = circuit_unitary(circuit_b.without_measurements())
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    if abs(b[index]) < 1e-12:
        return False
    return np.allclose(a / a[index], b / b[index], atol=1e-8)


class TestDecomposeToBasis:
    TWO_QUBIT_CASES = [
        ("swap", ()), ("cz", ()), ("cy", ()), ("ch", ()), ("iswap", ()),
        ("cp", (0.7,)), ("cu1", (0.9,)), ("crz", (0.5,)), ("crx", (0.4,)),
        ("cry", (0.6,)), ("cu3", (0.3, 0.5, 0.7)), ("rzz", (0.8,)),
        ("rxx", (0.6,)), ("ryy", (0.4,)), ("xx", ()),
    ]

    @pytest.mark.parametrize("name,params", TWO_QUBIT_CASES)
    def test_two_qubit_rewrites_preserve_unitary(self, name, params):
        circ = Circuit(2).add(name, [0, 1], params)
        lowered = decompose_to_basis(circ, BASIS_IBM)
        assert all(g.name in BASIS_IBM for g in lowered)
        assert equal_up_to_phase(circ, lowered)

    def test_cx_to_ion_trap_basis(self):
        circ = Circuit(2).cx(0, 1)
        lowered = decompose_to_basis(circ, BASIS_ION_TRAP)
        names = {g.name for g in lowered}
        assert names <= BASIS_ION_TRAP
        assert "xx" in names
        assert equal_up_to_phase(circ, lowered)

    def test_full_circuit_to_ion_trap(self):
        circ = Circuit(3).h(0).cx(0, 1).t(2).swap(1, 2).cz(0, 2)
        lowered = decompose_to_basis(circ, BASIS_ION_TRAP)
        assert {g.name for g in lowered} <= BASIS_ION_TRAP
        assert equal_up_to_phase(circ, lowered)

    @pytest.mark.parametrize("name,params", [
        ("h", ()), ("t", ()), ("s", ()), ("sdg", ()), ("sx", ()), ("x", ()),
        ("y", ()), ("z", ()), ("u2", (0.2, 0.9)), ("u3", (0.3, 0.5, 0.7)),
    ])
    def test_single_qubit_zyz_rewrite(self, name, params):
        circ = Circuit(1).add(name, [0], params)
        lowered = decompose_to_basis(circ, {"rx", "ry", "rz", "id"})
        assert {g.name for g in lowered} <= {"rx", "ry", "rz", "id"}
        assert equal_up_to_phase(circ, lowered)

    def test_gates_already_in_basis_untouched(self):
        circ = Circuit(2).cx(0, 1).rz(0.3, 0)
        assert decompose_to_basis(circ, BASIS_IBM) == circ

    def test_measure_and_barrier_pass_through(self):
        circ = Circuit(1).h(0).barrier(0).measure(0)
        lowered = decompose_to_basis(circ, BASIS_ION_TRAP)
        names = [g.name for g in lowered]
        assert "barrier" in names and "measure" in names

    def test_decompose_swaps_preserves_routing_tag(self):
        circ = Circuit(2)
        circ.append(Gate("swap", (0, 1), tag="routing"))
        lowered = decompose_swaps(circ)
        assert [g.name for g in lowered] == ["cx", "cx", "cx"]
        assert all(g.tag == "routing" for g in lowered)

    def test_decompose_swaps_preserves_unitary(self):
        circ = Circuit(3).h(0).swap(0, 2).cx(1, 2)
        assert equal_up_to_phase(circ, decompose_swaps(circ))


class TestPeepholeOptimisations:
    def test_adjacent_self_inverses_cancel(self):
        circ = Circuit(2).h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1)
        assert len(cancel_adjacent_inverses(circ)) == 0

    def test_dagger_pairs_cancel(self):
        circ = Circuit(1).s(0).sdg(0).t(0).tdg(0)
        assert len(cancel_adjacent_inverses(circ)) == 0

    def test_intervening_gate_on_other_qubit_does_not_block(self):
        circ = Circuit(2).h(0).x(1).h(0)
        assert [g.name for g in cancel_adjacent_inverses(circ)] == ["x"]

    def test_intervening_gate_on_same_qubit_blocks(self):
        circ = Circuit(1).h(0).t(0).h(0)
        assert len(cancel_adjacent_inverses(circ)) == 3

    def test_cx_pair_with_different_orientation_not_cancelled(self):
        circ = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_inverses(circ)) == 2

    def test_measure_blocks_cancellation(self):
        circ = Circuit(1).h(0).measure(0).h(0)
        assert len(cancel_adjacent_inverses(circ)) == 3

    def test_merge_rotations_same_axis(self):
        circ = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        merged = merge_rotations(circ)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.7)

    def test_merge_rotations_two_qubit(self):
        circ = Circuit(2).rzz(0.3, 0, 1).rzz(0.2, 0, 1)
        merged = merge_rotations(circ)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.5)

    def test_merge_blocked_by_intervening_gate(self):
        circ = Circuit(1).rz(0.3, 0).h(0).rz(0.4, 0)
        assert len(merge_rotations(circ)) == 3

    def test_remove_trivial_gates(self):
        circ = Circuit(1).rz(0.0, 0).add("id", [0]).rz(4 * math.pi, 0).rz(0.5, 0)
        cleaned = remove_trivial_gates(circ)
        assert [g.name for g in cleaned] == ["rz"]
        assert cleaned[0].params[0] == pytest.approx(0.5)

    def test_optimize_circuit_reaches_fixpoint(self):
        circ = Circuit(2).h(0).h(0).rz(0.2, 1).rz(-0.2, 1).cx(0, 1).cx(0, 1)
        assert len(optimize_circuit(circ)) == 0

    @pytest.mark.parametrize("builder", [
        lambda: Circuit(2).h(0).h(0).cx(0, 1).t(1).tdg(1).cx(0, 1),
        lambda: Circuit(3).ccx(0, 1, 2).rz(0.1, 0).rz(0.2, 0),
        lambda: qft(3),
    ])
    def test_optimisation_preserves_semantics(self, builder):
        circ = builder()
        assert equal_up_to_phase(circ, optimize_circuit(circ))

    def test_optimisation_is_idempotent(self):
        circ = Circuit(2).h(0).h(0).cx(0, 1).rz(0.1, 1).rz(0.2, 1)
        once = optimize_circuit(circ)
        twice = optimize_circuit(once)
        assert once == twice


class TestTranspilePipeline:
    def test_transpile_defaults(self):
        result = transpile(qft(5), get_device("ibm_q20_tokyo"))
        assert result.verified
        assert result.equivalence_checked
        assert result.weighted_depth > 0
        assert result.summary()["router"] == "codar"

    def test_transpile_to_ion_trap_basis(self):
        result = transpile(qft(4), get_device("line", num_qubits=4),
                           basis=BASIS_ION_TRAP)
        gate_names = {g.name for g in result.compiled if not g.is_measure}
        assert gate_names <= BASIS_ION_TRAP
        assert result.verified

    def test_transpile_with_sabre(self):
        from repro.mapping.sabre.remapper import SabreRouter
        result = transpile(qft(5), get_device("ibm_q20_tokyo"), router=SabreRouter())
        assert result.routing.router_name == "sabre"
        assert result.verified

    def test_transpile_without_optimisation_or_verification(self):
        result = transpile(qft(4), get_device("grid", rows=2, cols=2),
                           optimize=False, verify=False)
        assert result.verified  # trivially true when not checked
        assert not result.equivalence_checked

    def test_transpile_respects_given_layout(self):
        from repro.mapping.layout import Layout
        layout = Layout.identity(20)
        result = transpile(qft(5), get_device("ibm_q20_tokyo"),
                           initial_layout=layout)
        assert result.routing.initial_layout == layout
