"""Stage-level tests: the passes package as first-class pipeline stages,
the pipeline CLI, and the server acceptance path for JSON pipeline specs."""

import json

import numpy as np
import pytest

from repro.arch.devices import get_device
from repro.cli import main
from repro.compiler import (DecomposeStage, LayoutStage, OptimizeStage,
                            OrientationStage, ParseStage, Pipeline,
                            PipelineContext, VerifyStage, pipeline_preset)
from repro.core.circuit import Circuit
from repro.core.unitary import circuit_unitary
from repro.passes.decompose import BASIS_ION_TRAP
from repro.qasm.exporter import circuit_to_qasm
from repro.workloads.generators import ghz, qft


def equal_up_to_phase(circuit_a: Circuit, circuit_b: Circuit) -> bool:
    a = circuit_unitary(circuit_a.without_measurements())
    b = circuit_unitary(circuit_b.without_measurements())
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    if abs(b[index]) < 1e-12:
        return False
    return np.allclose(a / a[index], b / b[index], atol=1e-8)


# --------------------------------------------------------------------------- #
# Individual stages
# --------------------------------------------------------------------------- #
class TestParseStage:
    def test_parses_qasm_and_sets_original(self):
        from repro.compiler import clear_parse_cache

        clear_parse_cache()
        context = PipelineContext(device=get_device("line", num_qubits=3),
                                  qasm=circuit_to_qasm(ghz(3)),
                                  circuit_name="mine")
        metrics = ParseStage().run(context)
        assert context.circuit is not None
        assert context.original is context.circuit
        assert metrics == {"gates": len(context.circuit), "qubits": 3,
                           "cache_hit": False}

    def test_without_circuit_or_qasm_raises(self):
        context = PipelineContext(device=get_device("line", num_qubits=2))
        with pytest.raises(ValueError, match="neither a circuit nor QASM"):
            ParseStage().run(context)


class TestDecomposeStage:
    def test_ion_trap_stage_in_a_pipeline(self):
        pipeline = Pipeline.from_spec([
            "parse", "layout", {"name": "route"},
            {"name": "decompose", "params": {"basis": "ion_trap"}},
            "optimize", "schedule"])
        result = pipeline.run(qft(4), get_device("line", num_qubits=4))
        names = {g.name for g in result.compiled if not g.is_measure}
        assert names <= BASIS_ION_TRAP

    def test_explicit_basis_list_is_canonicalised(self):
        stage = DecomposeStage(basis=["rz", "ry", "rx", "id"])
        assert stage.params() == {"basis": ["id", "rx", "ry", "rz"]}
        context = PipelineContext(device=get_device("line", num_qubits=1),
                                  circuit=Circuit(1).h(0))
        stage.run(context)
        assert {g.name for g in context.circuit} <= {"rz", "ry", "rx", "id"}

    def test_unknown_named_basis_rejected(self):
        with pytest.raises(ValueError, match="unknown named basis"):
            DecomposeStage(basis="morse_code")

    def test_decomposition_preserves_semantics(self):
        circ = Circuit(2).h(0).cx(0, 1).swap(0, 1)
        context = PipelineContext(device=get_device("line", num_qubits=2),
                                  circuit=circ)
        DecomposeStage(basis="ion_trap").run(context)
        assert equal_up_to_phase(circ, context.circuit)


class TestOptimizeStage:
    def test_removes_redundant_gates(self):
        context = PipelineContext(
            device=get_device("line", num_qubits=2),
            circuit=Circuit(2).h(0).h(0).cx(0, 1).cx(0, 1))
        metrics = OptimizeStage().run(context)
        assert len(context.circuit) == 0
        assert metrics == {"gates_in": 4, "gates_out": 0}

    def test_max_rounds_validated(self):
        with pytest.raises(ValueError, match="max_rounds"):
            OptimizeStage(max_rounds=0)

    def test_optimisation_preserves_semantics(self):
        circ = qft(3)
        context = PipelineContext(device=get_device("line", num_qubits=3),
                                  circuit=circ)
        OptimizeStage().run(context)
        assert equal_up_to_phase(circ, context.circuit)


class TestOrientationStage:
    def test_noop_on_undirected_devices(self):
        circ = ghz(3)
        context = PipelineContext(device=get_device("line", num_qubits=3),
                                  circuit=circ)
        metrics = OrientationStage().run(context)
        assert metrics == {"oriented": False}
        assert context.circuit is circ
        assert context.properties["oriented"] is False

    def test_orients_routed_circuit_on_directed_device(self):
        device = get_device("ibm_qx4")
        pipeline = Pipeline.from_spec([
            "parse", "layout", {"name": "route"}, "orientation", "schedule"])
        result = pipeline.run(ghz(5), device)
        for gate in result.compiled.gates:
            if gate.name == "cx":
                assert device.directed.allows(*gate.qubits)
        record = [row for row in result.stage_timings()
                  if row["stage"] == "orientation"][0]
        assert record["metrics"]["oriented"] is True

    def test_directed_preset_keeps_semantics(self):
        result = pipeline_preset("directed").run(ghz(4),
                                                 get_device("ibm_qx5"))
        assert result.routing is not None
        assert result.context.properties["oriented"] is True

    def test_unrouted_circuit_rejected(self):
        device = get_device("ibm_qx4")
        context = PipelineContext(device=device,
                                  circuit=Circuit(5).cx(0, 3))
        with pytest.raises(ValueError,
                           match="not coupled|not coupling-compliant"):
            OrientationStage().run(context)


class TestVerifyAndLayoutStages:
    def test_strict_verify_raises_on_violation(self):
        from repro.mapping.base import RoutingResult
        from repro.mapping.layout import Layout

        device = get_device("line", num_qubits=3)
        broken = Circuit(3).cx(0, 2)  # not adjacent on a line
        routing = RoutingResult(
            router_name="fake", original=broken, routed=broken,
            device=device, initial_layout=Layout.identity(3),
            final_layout=Layout.identity(3), swap_count=0,
            weighted_depth=2.0, depth=1)
        context = PipelineContext(device=device, circuit=broken,
                                  routing=routing)
        VerifyStage().run(context)
        assert context.properties["verified"] is False
        with pytest.raises(ValueError, match="verification failed"):
            VerifyStage(strict=True).run(context)

    def test_layout_strategy_validated(self):
        with pytest.raises(ValueError, match="unknown layout strategy"):
            LayoutStage(strategy="astrology")

    def test_reverse_traversal_rounds(self):
        context = PipelineContext(device=get_device("ibm_q20_tokyo"),
                                  circuit=qft(4))
        LayoutStage(strategy="reverse_traversal", rounds=2).run(context)
        assert context.layout is not None
        assert context.layout_strategy == "reverse_traversal"


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestPipelineCli:
    def test_pipeline_list(self, capsys):
        assert main(["pipeline", "list"]) == 0
        out = capsys.readouterr().out
        assert "default" in out and "route_only" in out

    def test_pipeline_describe_preset(self, capsys):
        assert main(["pipeline", "describe", "default"]) == 0
        captured = capsys.readouterr()
        spec = json.loads(captured.out)
        assert [s["name"] for s in spec["stages"]][:2] == ["parse", "optimize"]
        assert "# key:" in captured.err

    def test_pipeline_describe_unknown(self, capsys):
        assert main(["pipeline", "describe", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_pipeline_run_preset(self, tmp_path, capsys):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(circuit_to_qasm(ghz(4)))
        record = tmp_path / "record.json"
        code = main(["pipeline", "run", str(qasm), "--pipeline", "route_only",
                     "--device", "ibm_q20_tokyo", "--quiet",
                     "--json", str(record)])
        captured = capsys.readouterr()
        assert code == 0
        assert "weighted depth" in captured.err
        assert "route" in captured.err
        data = json.loads(record.read_text())
        assert data["outcome"]["status"] == "ok"
        assert data["job"]["pipeline"][0]["name"] == "parse"

    def test_pipeline_run_spec_file(self, tmp_path, capsys):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(circuit_to_qasm(ghz(3)))
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(["parse", "layout", {"name": "route"},
                                    "schedule"]))
        assert main(["pipeline", "run", str(qasm), "--pipeline",
                     f"@{spec}", "--device", "line_3", "--quiet"]) == 0
        assert "pipeline" in capsys.readouterr().err

    def test_pipeline_run_bad_spec(self, tmp_path, capsys):
        qasm = tmp_path / "ghz.qasm"
        qasm.write_text(circuit_to_qasm(ghz(3)))
        assert main(["pipeline", "run", str(qasm), "--pipeline",
                     '["warp_drive"]']) == 2
        assert "unknown stage" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Acceptance: POST /jobs with a pipeline spec == local `pipeline run`
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestServerPipelineAcceptance:
    def test_http_pipeline_job_matches_local_run_and_reports_stage_metrics(self):
        from repro.server import CompileClient, CompileServer
        from repro.service.executor import execute_job
        from repro.service.jobs import CompileJob

        job = CompileJob.from_circuit(qft(4), "ibm_q20_tokyo",
                                      pipeline="default")
        local = execute_job(job)
        with CompileServer(port=0, workers=2) as server:
            client = CompileClient(server.url)
            remote = client.compile(job, timeout=60.0)
            # Same key, same compiled circuit, same metrics.
            assert remote.job_key == local.job_key == job.key
            assert remote.routed_qasm == local.routed_qasm
            stable = lambda s: {k: v for k, v in s.items()  # noqa: E731
                                if k not in ("runtime_s", "wall_s", "extra")}
            assert stable(remote.summary) == stable(local.summary)
            # A changed stage spec misses the cache (different key).
            stages = [dict(spec, params=dict(spec["params"]))
                      for spec in job.pipeline]
            assert stages[1]["name"] == "optimize"
            stages[1]["params"]["max_rounds"] = 2
            tweaked = CompileJob.from_dict({**job.to_dict(),
                                            "pipeline": stages})
            assert tweaked.key != job.key
            cold = client.compile(tweaked, timeout=60.0)
            assert not cold.cache_hit and cold.ok
            # /metrics exposes per-stage timing counters.
            samples = client.metrics()
            assert samples.get(
                'repro_server_stage_runs_total{stage="route"}', 0) >= 2
            assert samples.get(
                'repro_server_stage_seconds_total{stage="route"}', 0) > 0
