"""Tests for the racing portfolio subsystem (candidates, cost, runner, tuner)."""

import json

import pytest

from repro.portfolio import (COST_MODELS, Candidate, PortfolioRunner,
                             TuningStore, UNSCORABLE, build_cost_model,
                             cost_spec, feature_bucket, portfolio_preset,
                             resolve_candidates, score_outcome, score_result)
from repro.service import (CompilationService, CompileOutcome, PortfolioJob,
                           ResultCache, job_from_dict, make_job)
from repro.service.executor import execute_job
from repro.workloads.generators import ghz, qft


# --------------------------------------------------------------------------- #
# Candidates
# --------------------------------------------------------------------------- #
class TestCandidates:
    def test_router_spec_is_normalised(self):
        candidate = Candidate("codar-noise-aware")
        assert candidate.router == {"name": "codar_noise_aware", "params": {}}
        assert candidate.label == "codar_noise_aware/degree"

    def test_key_is_stable_and_label_free(self):
        a = Candidate("codar", seed=3)
        b = Candidate("codar", seed=3, label="anything else")
        assert a.key == b.key
        assert a.key != Candidate("codar", seed=4).key
        assert a.key != Candidate("sabre", seed=3).key
        assert a.key != Candidate("codar", layout_strategy="random", seed=3).key

    def test_dict_round_trip(self):
        candidate = Candidate({"name": "codar", "params":
                               {"use_commutativity": False}},
                              layout_strategy="random", seed=11)
        clone = Candidate.from_dict(candidate.to_dict())
        assert clone == candidate and clone.key == candidate.key

    def test_unknown_layout_strategy_rejected(self):
        with pytest.raises(ValueError, match="layout strategy"):
            Candidate("codar", layout_strategy="nope")

    def test_job_for_threads_spec_and_seed(self):
        candidate = Candidate("sabre", layout_strategy="random")
        job = candidate.job_for("OPENQASM 2.0;\nqreg q[2];\n",
                                "ibm_q20_tokyo", circuit_name="c",
                                default_seed=9)
        assert job.router["name"] == "sabre"
        assert job.layout_strategy == "random"
        assert job.seed == 9
        pinned = Candidate("sabre", seed=1).job_for(
            "OPENQASM 2.0;\nqreg q[2];\n", "ibm_q20_tokyo", default_seed=9)
        assert pinned.seed == 1  # explicit candidate seeds win

    def test_presets_cover_multiple_routers(self):
        for name, minimum in (("fast", 3), ("thorough", 5),
                              ("duration_aware", 2)):
            routers = {c.router["name"] for c in portfolio_preset(name)}
            assert len(routers) >= minimum, name
        with pytest.raises(KeyError, match="unknown portfolio preset"):
            portfolio_preset("nope")

    def test_resolve_candidates_accepts_every_shape(self):
        assert [c.label for c in resolve_candidates("fast")] \
            == [c.label for c in portfolio_preset("fast")]
        assert resolve_candidates("codar")[0].router["name"] == "codar"
        mixed = resolve_candidates(["codar", Candidate("sabre"),
                                    {"router": "trivial",
                                     "layout_strategy": "identity"}])
        assert [c.router["name"] for c in mixed] == ["codar", "sabre", "trivial"]

    def test_resolve_candidates_dedupes_and_rejects_empty(self):
        assert len(resolve_candidates(["codar", "codar"])) == 1
        with pytest.raises(ValueError, match="at least one"):
            resolve_candidates([])


# --------------------------------------------------------------------------- #
# Cost models
# --------------------------------------------------------------------------- #
def _ok_outcome():
    return execute_job(make_job(qft(4), "ibm_q20_tokyo", "codar", seed=1))


class TestCostModels:
    def test_summary_field_models(self):
        outcome = _ok_outcome()
        assert score_outcome(build_cost_model("swaps"), outcome) \
            == outcome.summary["swaps"]
        assert score_outcome(build_cost_model("depth"), outcome) \
            == outcome.summary["depth"]
        assert score_outcome(build_cost_model("weighted_depth"), outcome) \
            == outcome.summary["weighted_depth"]

    def test_elapsed_model_uses_measured_latency(self):
        outcome = _ok_outcome()
        assert score_outcome(build_cost_model("elapsed"), outcome) \
            == outcome.elapsed_s > 0

    def test_failed_outcome_is_unscorable(self):
        outcome = CompileOutcome(job_key="k", status="error", error="boom")
        assert score_outcome(build_cost_model("swaps"), outcome) == UNSCORABLE

    def test_duration_model_rescores_under_other_technology(self):
        outcome = _ok_outcome()
        ion = build_cost_model({"name": "duration",
                                "params": {"technology": "ion_trap"}})
        score = score_outcome(ion, outcome)
        # Ion-trap two-qubit gates are ~12x slower: the re-scheduled makespan
        # must dominate the superconducting weighted depth.
        assert score > outcome.summary["weighted_depth"]

    def test_fidelity_model_is_a_probability_complement(self):
        outcome = _ok_outcome()
        model = build_cost_model({"name": "fidelity",
                                  "params": {"calibration": "ibm_q20"}})
        score = score_outcome(model, outcome)
        assert 0.0 <= score <= 1.0
        with pytest.raises(KeyError, match="calibration"):
            build_cost_model({"name": "fidelity",
                              "params": {"calibration": "nope"}})

    def test_weighted_sum_composes_and_round_trips(self):
        outcome = _ok_outcome()
        model = build_cost_model({
            "name": "weighted_sum",
            "params": {"terms": [["swaps", 2.0], ["depth", 0.5]]}})
        expected = (2.0 * outcome.summary["swaps"]
                    + 0.5 * outcome.summary["depth"])
        assert score_outcome(model, outcome) == pytest.approx(expected)
        clone = build_cost_model(model.spec())
        assert score_outcome(clone, outcome) == pytest.approx(expected)
        with pytest.raises(ValueError, match="at least one"):
            build_cost_model({"name": "weighted_sum", "params": {"terms": []}})

    def test_score_result_matches_score_outcome(self):
        from repro.mapping.codar.remapper import CodarRouter
        from repro.arch.devices import get_device

        result = CodarRouter().run(qft(4), get_device("ibm_q20_tokyo"), seed=1)
        model = build_cost_model("weighted_depth")
        assert score_result(model, result) == result.weighted_depth

    def test_registry_names(self):
        assert {"swaps", "depth", "weighted_depth", "elapsed", "duration",
                "fidelity", "weighted_sum"} <= set(COST_MODELS.names())
        assert cost_spec("swaps") == {"name": "swaps", "params": {}}


# --------------------------------------------------------------------------- #
# Tuning store
# --------------------------------------------------------------------------- #
class TestTuningStore:
    CANDS = None

    def setup_method(self):
        self.cands = [Candidate("codar"), Candidate("sabre"),
                      Candidate("trivial", layout_strategy="identity")]

    def test_feature_bucket_bands(self):
        assert feature_bucket(ghz(3)) == feature_bucket(ghz(4))
        assert feature_bucket(ghz(4)) != feature_bucket(ghz(16))

    def test_cold_store_is_identity_arrangement(self):
        store = TuningStore()
        assert store.arrange("dev", "b", self.cands) == self.cands

    def test_reorder_puts_winners_first_without_pruning_cold(self):
        store = TuningStore(min_observations=5)
        store.record("dev", "b", self.cands[1].key, self.cands)
        arranged = store.arrange("dev", "b", self.cands)
        assert arranged[0] == self.cands[1]
        assert len(arranged) == 3  # below min_observations: no pruning

    def test_warm_store_prunes(self):
        store = TuningStore(min_observations=2, max_candidates=1)
        for _ in range(2):
            store.record("dev", "b", self.cands[2].key, self.cands)
        arranged = store.arrange("dev", "b", self.cands)
        assert arranged == [self.cands[2]]
        # A different device/bucket is untouched.
        assert store.arrange("other", "b", self.cands) == self.cands

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "tuning.json"
        store = TuningStore(path, min_observations=1, max_candidates=1)
        store.record("dev", "b", self.cands[0].key, self.cands)
        reloaded = TuningStore(path, min_observations=1, max_candidates=1)
        assert reloaded.observations("dev", "b") == 1
        assert reloaded.win_rate("dev", "b", self.cands[0].key) == 1.0
        assert reloaded.arrange("dev", "b", self.cands) == [self.cands[0]]

    def test_corrupt_store_degrades_to_cold(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{not json")
        store = TuningStore(path)
        assert store.arrange("dev", "b", self.cands) == self.cands
        store.record("dev", "b", self.cands[0].key, self.cands)  # heals
        assert json.loads(path.read_text())["schema_version"] == 1

    def test_concurrent_saves_never_publish_a_corrupt_store(self, tmp_path):
        # Regression: save() used to build a pid-only temp file *outside*
        # the lock, so two server threads saving at once interleaved writes
        # into the same temp path and could os.replace() garbage into place.
        import threading

        path = tmp_path / "tuning.json"
        store = TuningStore(path, min_observations=10_000)
        rounds, threads = 25, 8
        barrier = threading.Barrier(threads)
        errors = []

        def hammer(worker: int):
            try:
                barrier.wait(10.0)
                for index in range(rounds):
                    store.record(f"dev{worker}", "b",
                                 self.cands[index % 3].key, self.cands,
                                 save=True)
                    # Every published snapshot must parse; a torn write here
                    # is exactly the bug this guards against.
                    data = json.loads(path.read_text())
                    assert data["schema_version"] == 1
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        pool = [threading.Thread(target=hammer, args=(worker,))
                for worker in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(60.0)
        assert not errors, errors[:1]
        reloaded = TuningStore(path)
        for worker in range(threads):
            assert reloaded.observations(f"dev{worker}", "b") == rounds
        strays = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert strays == []


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class TestPortfolioRunner:
    def test_winner_is_the_cost_model_argmin(self):
        runner = PortfolioRunner("weighted_depth")
        result = runner.run(qft(5), "ibm_q20_tokyo", candidates="fast", seed=2)
        assert result.ok
        scores = [r.score for r in result.reports if r.status == "ok"]
        assert len(scores) == 3
        assert result.score == min(scores)
        assert result.winner.outcome.summary["weighted_depth"] == result.score

    def test_same_seed_same_winner_and_layouts(self):
        candidates = [Candidate("codar", layout_strategy="random"),
                      Candidate("sabre", layout_strategy="random"),
                      Candidate("trivial", layout_strategy="identity")]
        runner = PortfolioRunner("weighted_depth")
        first = runner.run(qft(5), "ibm_q20_tokyo", candidates=candidates,
                           seed=7)
        again = runner.run(qft(5), "ibm_q20_tokyo", candidates=candidates,
                           seed=7)
        assert first.winner.candidate.key == again.winner.candidate.key
        assert first.outcome.summary["initial_layout"] \
            == again.outcome.summary["initial_layout"]
        assert first.outcome.routed_qasm == again.outcome.routed_qasm
        other = runner.run(qft(5), "ibm_q20_tokyo", candidates=candidates,
                           seed=8)
        assert other.outcome.summary["initial_layout"] \
            != first.outcome.summary["initial_layout"]

    def test_cache_short_circuits_the_whole_portfolio(self, tmp_path):
        runner = PortfolioRunner("weighted_depth",
                                 cache=ResultCache(tmp_path / "cache"))
        cold = runner.run(ghz(4), "ibm_q20_tokyo", candidates="fast", seed=1)
        warm = runner.run(ghz(4), "ibm_q20_tokyo", candidates="fast", seed=1)
        assert cold.stats["executed"] == 3 and cold.stats["cache_hits"] == 0
        assert warm.stats["executed"] == 0 and warm.stats["cache_hits"] == 3
        assert warm.winner.candidate.key == cold.winner.candidate.key
        assert warm.outcome.to_json() == cold.outcome.to_json()

    def test_beat_bound_cancels_stragglers_sequentially(self):
        runner = PortfolioRunner("weighted_depth")
        result = runner.run(qft(5), "ibm_q20_tokyo", candidates="thorough",
                            seed=1, beat_bound=1e9)  # anything beats this
        assert result.stats["executed"] == 1
        assert result.stats["cancelled"] == len(result.reports) - 1
        assert {r.status for r in result.reports} == {"ok", "cancelled"}

    def test_bound_beating_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = PortfolioRunner("weighted_depth", cache=cache)
        runner.run(ghz(4), "ibm_q20_tokyo", candidates="fast", seed=1)
        rerun = runner.run(ghz(4), "ibm_q20_tokyo", candidates="fast", seed=1,
                           beat_bound=1e9)
        assert rerun.stats["executed"] == 0

    def test_tuner_reorders_and_prunes_across_runs(self):
        store = TuningStore(min_observations=2, max_candidates=1)
        runner = PortfolioRunner("weighted_depth", tuner=store)
        first = runner.run(qft(5), "ibm_q20_tokyo", candidates="fast", seed=3)
        assert first.stats["candidates"] == 3
        runner.run(qft(5), "ibm_q20_tokyo", candidates="fast", seed=3)
        warm = runner.run(qft(5), "ibm_q20_tokyo", candidates="fast", seed=3)
        assert warm.stats["candidates"] == 1  # pruned to the learned winner
        assert warm.winner.candidate.key == first.winner.candidate.key

    def test_failed_candidates_never_win(self):
        # The bogus router parameter fails in the factory; the portfolio
        # still returns the surviving candidate.
        candidates = [Candidate({"name": "codar",
                                 "params": {"bogus_knob": 1}}),
                      Candidate("sabre")]
        runner = PortfolioRunner("weighted_depth")
        result = runner.run(qft(4), "ibm_q20_tokyo", candidates=candidates,
                            seed=1)
        assert result.ok
        assert result.winner.candidate.router["name"] == "sabre"
        statuses = {r.candidate.router["name"]: r.status
                    for r in result.reports}
        assert statuses["codar"] == "error"

    def test_no_survivor_portfolio_reports_failure(self):
        runner = PortfolioRunner("weighted_depth")
        result = runner.run(qft(5), "grid_2x2", candidates="fast", seed=1)
        assert not result.ok
        outcome = result.as_outcome("job-key")
        assert not outcome.ok and outcome.error_type == "PortfolioError"
        assert "ValueError" in outcome.error

    def test_racing_pool_matches_sequential_winner(self):
        candidates = portfolio_preset("fast")
        sequential = PortfolioRunner("weighted_depth").run(
            qft(5), "ibm_q20_tokyo", candidates=candidates, seed=4)
        with PortfolioRunner("weighted_depth", workers=2) as racing:
            raced = racing.run(qft(5), "ibm_q20_tokyo",
                               candidates=candidates, seed=4)
        assert raced.stats["executed"] == 3
        assert raced.winner.candidate.key == sequential.winner.candidate.key
        assert raced.outcome.routed_qasm == sequential.outcome.routed_qasm

    def test_hedged_restart_duplicates_stragglers(self):
        from repro.workloads.generators import random_circuit

        # hedge_timeout=0: every candidate still running at the first poll
        # gets a twin; results are deterministic so the winner is unchanged.
        circuit = random_circuit(10, 400, seed=3)
        candidates = [Candidate("codar"), Candidate("sabre")]
        baseline = PortfolioRunner("weighted_depth").run(
            circuit, "ibm_q20_tokyo", candidates=candidates, seed=2)
        # workers > candidates so the worker cap leaves room for hedges.
        with PortfolioRunner("weighted_depth", workers=4) as runner:
            hedged = runner.run(circuit, "ibm_q20_tokyo",
                                candidates=candidates, seed=2,
                                hedge_timeout=0.0)
        assert hedged.ok
        assert hedged.stats["hedged"] >= 1
        assert any(report.hedged for report in hedged.reports)
        assert hedged.winner.candidate.key == baseline.winner.candidate.key
        assert hedged.score == baseline.score

    def test_service_and_workers_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            PortfolioRunner(service=CompilationService(), workers=2)


# --------------------------------------------------------------------------- #
# The portfolio job kind
# --------------------------------------------------------------------------- #
class TestPortfolioJob:
    def test_round_trip_and_kind_dispatch(self):
        job = PortfolioJob.from_circuit(qft(4), "ibm_q20_tokyo", "fast", seed=2)
        clone = job_from_dict(job.to_dict())
        assert isinstance(clone, PortfolioJob)
        assert clone.key == job.key
        compile_job = job_from_dict(
            make_job(qft(4), "ibm_q20_tokyo", "codar").to_dict())
        assert compile_job.kind == "compile"
        with pytest.raises(ValueError, match="unknown job kind"):
            job_from_dict({"kind": "nope"})

    def test_key_covers_every_spec_field(self):
        base = PortfolioJob.from_circuit(qft(4), "ibm_q20_tokyo", "fast")
        assert base.key != PortfolioJob.from_circuit(
            qft(4), "ibm_q20_tokyo", "thorough").key
        assert base.key != PortfolioJob.from_circuit(
            qft(4), "ibm_q20_tokyo", "fast", cost="swaps").key
        assert base.key != PortfolioJob.from_circuit(
            qft(4), "ibm_q20_tokyo", "fast",
            racing={"beat_bound": 50.0}).key
        assert base.key != PortfolioJob.from_circuit(
            qft(4), "ibm_q20_tokyo", "fast", seed=1).key
        assert base.key != make_job(qft(4), "ibm_q20_tokyo", "codar").key

    def test_unknown_racing_option_rejected(self):
        with pytest.raises(ValueError, match="racing option"):
            PortfolioJob.from_circuit(qft(4), "ibm_q20_tokyo", "fast",
                                      racing={"warp_speed": 1})

    def test_executes_and_caches_like_any_job(self, tmp_path):
        job = PortfolioJob.from_circuit(qft(4), "ibm_q20_tokyo", "fast", seed=5)
        service = CompilationService(cache=ResultCache(tmp_path / "cache"))
        cold = service.compile_one(job)
        assert cold.ok and not cold.cache_hit
        portfolio = cold.summary["portfolio"]
        assert portfolio["winner_router"] in {"codar", "sabre", "trivial"}
        assert len(portfolio["candidates"]) == 3
        assert cold.elapsed_s is not None
        warm = service.compile_one(job)
        assert warm.cache_hit
        assert warm.to_json() == cold.to_json()

    def test_candidate_results_shared_across_cost_models(self, tmp_path):
        # Two portfolios over the same candidates but different cost models
        # have different job keys, yet the candidate legs hit the shared
        # result cache instead of recompiling.
        service = CompilationService(cache=ResultCache(tmp_path / "cache"))
        first = service.compile_one(PortfolioJob.from_circuit(
            qft(4), "ibm_q20_tokyo", "fast", seed=5))
        second = service.compile_one(PortfolioJob.from_circuit(
            qft(4), "ibm_q20_tokyo", "fast", seed=5, cost="swaps"))
        assert first.ok and second.ok and not second.cache_hit
        stats = second.summary["portfolio"]["stats"]
        assert stats["executed"] == 0 and stats["cache_hits"] == 3

    def test_racing_options_thread_through_the_job(self, tmp_path):
        # hedge_timeout is part of the job key *and* reaches the runner.
        job = PortfolioJob.from_circuit(qft(4), "ibm_q20_tokyo", "fast",
                                        racing={"beat_bound": 1e9,
                                                "hedge_timeout": 30.0})
        outcome = CompilationService().compile_one(job)
        assert outcome.ok
        stats = outcome.summary["portfolio"]["stats"]
        assert stats["executed"] == 1  # beat_bound early-stopped sequentially
        assert stats["cancelled"] == len(
            outcome.summary["portfolio"]["candidates"]) - 1

    def test_ticket_snapshot_renders_portfolio_jobs(self):
        job = PortfolioJob.from_circuit(ghz(3), "ibm_q20_tokyo", "fast")
        assert job.router == {"name": "portfolio", "params": {}}


# --------------------------------------------------------------------------- #
# HTTP end-to-end
# --------------------------------------------------------------------------- #
class TestPortfolioOverHttp:
    def test_post_portfolio_end_to_end_with_metrics(self):
        from repro.server.client import CompileClient, ServerError
        from repro.server.http import CompileServer

        job = PortfolioJob.from_circuit(qft(4), "ibm_q20_tokyo", "fast", seed=6)
        with CompileServer(port=0, workers=2) as server:
            client = CompileClient(server.url)
            outcome = client.portfolio(job)
            assert outcome.ok
            winner_router = outcome.summary["portfolio"]["winner_router"]
            replay = client.portfolio(job)  # served from cache
            assert replay.cache_hit
            samples = client.metrics()
            assert samples["repro_server_portfolio_runs_total"] == 1.0
            assert samples["repro_server_portfolio_candidates_run_total"] == 3.0
            assert samples[
                f'repro_server_portfolio_wins_total{{router="{winner_router}"}}'
            ] == 1.0
            snap = client.health()["metrics"]["portfolio"]
            assert snap["runs"] == 1 and snap["wins"] == {winner_router: 1}
            with pytest.raises(ServerError) as excinfo:
                client.submit_portfolio({"device": "ibm_q20_tokyo"})
            assert excinfo.value.status == 400
