"""Property-based tests (hypothesis) for core data structures and invariants.

These cover the invariants the rest of the system leans on:

* layouts stay bijective under arbitrary SWAP sequences,
* coupling-graph distances form a metric and drop by at most 1 per SWAP,
* the ASAP scheduler never overlaps gates on a qubit and its makespan is
  bounded by serial execution,
* the Commutative-Front set always contains the plain dependency front,
* routed circuits (CODAR and SABRE) are coupling-compliant and semantically
  equivalent to their input for random small circuits.
"""


from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.arch.coupling import CouplingGraph
from repro.arch.devices import get_device
from repro.arch.durations import GateDurationMap
from repro.core.circuit import Circuit
from repro.core.commutativity import commutative_front, dependency_front, gates_commute
from repro.core.gates import Gate
from repro.core.unitary import expand_to, gate_unitary, matrices_commute
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.layout import Layout
from repro.mapping.sabre.remapper import SabreRouter
from repro.mapping.verification import check_coupling_compliance, check_equivalence
from repro.sim.scheduler import asap_schedule

DUR = GateDurationMap(single=1, two=2, swap=6)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def random_circuits(max_qubits: int = 5, max_gates: int = 25):
    """Strategy producing small random circuits over a mixed gate alphabet."""

    @st.composite
    def build(draw):
        num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
        num_gates = draw(st.integers(min_value=1, max_value=max_gates))
        circ = Circuit(num_qubits, name="hypothesis")
        single = ["h", "x", "t", "s", "z", "rz"]
        for _ in range(num_gates):
            if draw(st.booleans()):
                name = draw(st.sampled_from(single))
                qubit = draw(st.integers(0, num_qubits - 1))
                if name == "rz":
                    circ.rz(draw(st.floats(0.1, 3.0)), qubit)
                else:
                    circ.add(name, [qubit])
            else:
                a = draw(st.integers(0, num_qubits - 1))
                offset = draw(st.integers(1, num_qubits - 1))
                b = (a + offset) % num_qubits
                circ.add(draw(st.sampled_from(["cx", "cz"])), [a, b])
        return circ

    return build()


swap_sequences = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(lambda t: t[0] != t[1]),
    max_size=30,
)


# --------------------------------------------------------------------------- #
# Layout invariants
# --------------------------------------------------------------------------- #
class TestLayoutProperties:
    @given(swaps=swap_sequences)
    def test_layout_stays_bijective_under_swaps(self, swaps):
        layout = Layout.identity(6)
        for a, b in swaps:
            layout.swap_physical(a, b)
        assert sorted(layout.physical_list()) == list(range(6))
        for logical in range(6):
            assert layout.logical(layout.physical(logical)) == logical

    @given(swaps=swap_sequences)
    def test_swap_sequence_then_reverse_restores_identity(self, swaps):
        layout = Layout.identity(6)
        for a, b in swaps:
            layout.swap_physical(a, b)
        for a, b in reversed(swaps):
            layout.swap_physical(a, b)
        assert layout == Layout.identity(6)


# --------------------------------------------------------------------------- #
# Coupling graph invariants
# --------------------------------------------------------------------------- #
class TestCouplingProperties:
    @given(rows=st.integers(1, 4), cols=st.integers(2, 4),
           data=st.data())
    def test_grid_distance_is_manhattan(self, rows, cols, data):
        grid = CouplingGraph.grid(rows, cols)
        a = data.draw(st.integers(0, rows * cols - 1))
        b = data.draw(st.integers(0, rows * cols - 1))
        ra, ca = divmod(a, cols)
        rb, cb = divmod(b, cols)
        assert grid.distance(a, b) == abs(ra - rb) + abs(ca - cb)

    @given(n=st.integers(2, 12), data=st.data())
    def test_triangle_inequality_on_lines_and_rings(self, n, data):
        graph = CouplingGraph.ring(n) if data.draw(st.booleans()) else CouplingGraph.line(n)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert graph.distance(a, c) <= graph.distance(a, b) + graph.distance(b, c)
        assert graph.distance(a, b) == graph.distance(b, a)
        assert graph.distance(a, a) == 0


# --------------------------------------------------------------------------- #
# Scheduler invariants
# --------------------------------------------------------------------------- #
class TestSchedulerProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(circuit=random_circuits())
    def test_no_qubit_overlap_and_serial_bound(self, circuit):
        schedule = asap_schedule(circuit, DUR)
        # No two gates overlap on any qubit.
        per_qubit: dict[int, list] = {}
        for sg in schedule.gates:
            for q in sg.gate.qubits:
                per_qubit.setdefault(q, []).append((sg.start, sg.finish))
        for intervals in per_qubit.values():
            intervals.sort()
            for (_s1, f1), (s2, _f2) in zip(intervals, intervals[1:]):
                assert f1 <= s2
        # Makespan bounded by fully serial execution and at least the busiest qubit.
        serial = sum(DUR.duration_of(g) for g in circuit.gates)
        busiest = max((schedule.busy_time(q) for q in range(circuit.num_qubits)),
                      default=0)
        assert busiest <= schedule.makespan <= serial

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(circuit=random_circuits())
    def test_gate_order_preserved_per_qubit(self, circuit):
        schedule = asap_schedule(circuit, DUR)
        last_start: dict[int, float] = {}
        for sg in schedule.gates:
            for q in sg.gate.qubits:
                assert sg.start >= last_start.get(q, 0.0)
                last_start[q] = sg.start


# --------------------------------------------------------------------------- #
# Commutativity invariants
# --------------------------------------------------------------------------- #
class TestCommutativityProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(circuit=random_circuits(max_qubits=4, max_gates=12))
    def test_dependency_front_is_subset_of_cf(self, circuit):
        dep = set(dependency_front(circuit.gates))
        cf = set(commutative_front(circuit.gates))
        assert dep <= cf

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=40)
    @given(data=st.data())
    def test_rule_based_commutation_is_sound(self, data):
        """Whenever the checker says two gates commute, their matrices agree."""
        names_1q = ["h", "x", "z", "s", "t", "rz", "rx"]
        names_2q = ["cx", "cz", "cu1"]
        def draw_gate():
            if data.draw(st.booleans()):
                name = data.draw(st.sampled_from(names_1q))
                qubit = data.draw(st.integers(0, 2))
                params = (0.7,) if name in ("rz", "rx") else ()
                return Gate(name, (qubit,), params)
            name = data.draw(st.sampled_from(names_2q))
            a = data.draw(st.integers(0, 2))
            b = data.draw(st.integers(0, 2))
            assume(a != b)
            params = (0.5,) if name == "cu1" else ()
            return Gate(name, (a, b), params)

        gate_a, gate_b = draw_gate(), draw_gate()
        if gates_commute(gate_a, gate_b):
            union = sorted(set(gate_a.qubits) | set(gate_b.qubits))
            index = {q: i for i, q in enumerate(union)}
            ma = expand_to(gate_unitary(gate_a),
                           tuple(index[q] for q in gate_a.qubits), len(union))
            mb = expand_to(gate_unitary(gate_b),
                           tuple(index[q] for q in gate_b.qubits), len(union))
            assert matrices_commute(ma, mb)


# --------------------------------------------------------------------------- #
# End-to-end routing invariants
# --------------------------------------------------------------------------- #
class TestRoutingProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=25)
    @given(circuit=random_circuits(max_qubits=5, max_gates=20), data=st.data())
    def test_codar_output_is_compliant_and_equivalent(self, circuit, data):
        device = data.draw(st.sampled_from([
            get_device("line", num_qubits=5),
            get_device("grid", rows=2, cols=3),
            get_device("ring", num_qubits=6),
        ]))
        result = CodarRouter().run(circuit, device)
        assert check_coupling_compliance(result) == []
        assert check_equivalence(result, samples=2)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=25)
    @given(circuit=random_circuits(max_qubits=5, max_gates=20))
    def test_sabre_output_is_compliant_and_equivalent(self, circuit):
        device = get_device("grid", rows=2, cols=3)
        result = SabreRouter().run(circuit, device)
        assert check_coupling_compliance(result) == []
        assert check_equivalence(result, samples=2)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=20)
    @given(circuit=random_circuits(max_qubits=5, max_gates=15))
    def test_codar_gate_count_accounting(self, circuit):
        device = get_device("grid", rows=2, cols=3)
        result = CodarRouter().run(circuit, device)
        non_swap = [g for g in result.routed if not g.is_routing_swap]
        original_non_barrier = [g for g in circuit if not g.is_barrier]
        assert len(non_swap) == len(original_non_barrier)
        assert result.swap_count == sum(1 for g in result.routed if g.is_routing_swap)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=20)
    @given(circuit=random_circuits(max_qubits=5, max_gates=20))
    def test_astar_output_is_compliant_and_equivalent(self, circuit):
        from repro.mapping.astar.remapper import AStarRouter

        device = get_device("grid", rows=2, cols=3)
        result = AStarRouter().run(circuit, device)
        assert check_coupling_compliance(result) == []
        assert check_equivalence(result, samples=2)


# --------------------------------------------------------------------------- #
# Scheduling and orientation invariants for the extension modules
# --------------------------------------------------------------------------- #
class TestExtensionProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(circuit=random_circuits())
    def test_alap_keeps_the_asap_makespan(self, circuit):
        from repro.sim.scheduler import alap_schedule

        asap = asap_schedule(circuit, DUR)
        alap = alap_schedule(circuit, DUR)
        assert alap.makespan == asap.makespan
        # ALAP never starts a gate earlier than ASAP does on average (it only
        # pushes gates later), and never before time zero.
        assert all(sg.start >= -1e-9 for sg in alap.gates)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=30)
    @given(circuit=random_circuits(max_qubits=4, max_gates=15))
    def test_orientation_preserves_semantics_on_a_directed_line(self, circuit):
        from repro.arch.directed import DirectedCouplingGraph
        from repro.mapping.codar.remapper import CodarRouter
        from repro.passes.orientation import orient_cx
        from repro.sim.statevector import StatevectorSimulator
        import numpy as np

        # One-way directed 4-qubit line: every reversed CX must be fixed up.
        directed = DirectedCouplingGraph(4, [(0, 1), (1, 2), (2, 3)])
        device = get_device("line", num_qubits=4)
        result = CodarRouter().run(circuit, device)
        oriented = orient_cx(result.routed, directed)
        for gate in oriented.gates:
            if gate.name == "cx":
                assert directed.allows(*gate.qubits)
        sim = StatevectorSimulator()
        before = sim.run(result.routed.without_measurements())
        after = sim.run(oriented.without_measurements())
        assert abs(abs(np.vdot(before, after)) - 1.0) < 1e-9

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
              max_examples=30)
    @given(circuit=random_circuits(max_qubits=5, max_gates=30))
    def test_esp_is_a_probability_and_shrinks_with_more_gates(self, circuit):
        from repro.arch.calibration import TABLE_I
        from repro.core.gates import Gate
        from repro.sim.success import estimate_success

        calibration = TABLE_I["ibm_q20"]
        base = estimate_success(circuit, calibration)
        assert 0.0 <= base.probability <= 1.0
        extended = circuit.copy()
        extended.append(Gate("cx", (0, 1)))
        more = estimate_success(extended, calibration)
        assert more.probability <= base.probability + 1e-12
