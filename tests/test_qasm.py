"""Tests for the OpenQASM 2.0 frontend and exporter."""

import math

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.unitary import circuit_unitary
from repro.qasm import QasmError, circuit_to_qasm, parse_qasm
from repro.qasm.lexer import QasmSyntaxError, tokenize
from repro.qasm.parser import evaluate_expr, _Parser


BELL = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
"""


class TestLexer:
    def test_tokenizes_basic_program(self):
        kinds = [t.kind for t in tokenize("qreg q[2];")]
        assert kinds == ["keyword", "id", "symbol", "int", "symbol", "symbol", "eof"]

    def test_comments_and_whitespace_skipped(self):
        tokens = list(tokenize("// a comment\nh q[0];"))
        assert tokens[0].value == "h"

    def test_line_numbers_tracked(self):
        tokens = list(tokenize("h q[0];\ncx q[0],q[1];"))
        cx = [t for t in tokens if t.value == "cx"][0]
        assert cx.line == 2

    def test_bad_character_raises(self):
        with pytest.raises(QasmSyntaxError, match="unexpected character"):
            list(tokenize("h q[0]; @"))

    def test_real_number_formats(self):
        values = [t.value for t in tokenize("rx(0.5) q[0]; ry(1e-3) q[0];")
                  if t.kind == "real"]
        assert values == ["0.5", "1e-3"]


class TestExpressionEvaluation:
    def _eval(self, text, bindings=None):
        parser = _Parser(text)
        expr = parser.parse_expression()
        return evaluate_expr(expr, bindings or {})

    def test_pi_and_arithmetic(self):
        assert self._eval("pi/2") == pytest.approx(math.pi / 2)
        assert self._eval("3*pi/4") == pytest.approx(3 * math.pi / 4)
        assert self._eval("-pi") == pytest.approx(-math.pi)
        assert self._eval("2^3") == 8

    def test_operator_precedence(self):
        assert self._eval("1+2*3") == 7
        assert self._eval("(1+2)*3") == 9

    def test_functions(self):
        assert self._eval("cos(0)") == 1.0
        assert self._eval("sqrt(4)") == 2.0

    def test_parameter_binding(self):
        assert self._eval("theta/2", {"theta": 1.0}) == 0.5

    def test_unbound_parameter_raises(self):
        with pytest.raises(QasmError, match="unbound"):
            self._eval("theta")


class TestParser:
    def test_bell_circuit(self):
        circ = parse_qasm(BELL)
        assert circ.num_qubits == 2
        assert circ.num_clbits == 2
        assert [g.name for g in circ] == ["h", "cx", "measure", "measure"]

    def test_register_flattening(self):
        text = """
        OPENQASM 2.0;
        qreg a[2];
        qreg b[2];
        cx a[1],b[0];
        """
        circ = parse_qasm(text)
        assert circ.num_qubits == 4
        assert circ[0].qubits == (1, 2)

    def test_register_broadcast(self):
        text = "qreg q[3]; h q;"
        circ = parse_qasm(text)
        assert [g.qubits for g in circ] == [(0,), (1,), (2,)]

    def test_two_register_broadcast(self):
        text = "qreg a[3]; qreg b[3]; cx a,b;"
        circ = parse_qasm(text)
        assert [g.qubits for g in circ] == [(0, 3), (1, 4), (2, 5)]

    def test_mixed_broadcast_single_and_register(self):
        text = "qreg a[1]; qreg b[3]; cx a[0],b;"
        circ = parse_qasm(text)
        assert [g.qubits for g in circ] == [(0, 1), (0, 2), (0, 3)]

    def test_parametric_gates(self):
        circ = parse_qasm("qreg q[1]; rz(pi/4) q[0]; u3(pi,0,pi) q[0];")
        assert circ[0].params == (pytest.approx(math.pi / 4),)
        assert circ[1].params == (pytest.approx(math.pi), 0.0, pytest.approx(math.pi))

    def test_user_gate_definition_inlined(self):
        text = """
        qreg q[2];
        gate bell a,b { h a; cx a,b; }
        bell q[0],q[1];
        """
        circ = parse_qasm(text)
        assert [g.name for g in circ] == ["h", "cx"]

    def test_parametric_user_gate(self):
        text = """
        qreg q[1];
        gate tilt(theta) a { rz(theta/2) a; }
        tilt(pi) q[0];
        """
        circ = parse_qasm(text)
        assert circ[0].params == (pytest.approx(math.pi / 2),)

    def test_nested_gate_definitions(self):
        text = """
        qreg q[2];
        gate inner a { h a; }
        gate outer a,b { inner a; cx a,b; }
        outer q[0],q[1];
        """
        circ = parse_qasm(text)
        assert [g.name for g in circ] == ["h", "cx"]

    def test_builtin_ccx_expansion(self):
        circ = parse_qasm("qreg q[3]; ccx q[0],q[1],q[2];")
        counts = circ.count_ops()
        assert counts["cx"] == 6
        assert all(g.num_qubits <= 2 for g in circ)

    def test_ccx_expansion_matches_reference_toffoli(self):
        parsed = parse_qasm("qreg q[3]; ccx q[0],q[1],q[2];")
        reference = Circuit(3).ccx(0, 1, 2)
        assert np.allclose(circuit_unitary(parsed), circuit_unitary(reference))

    def test_barrier_and_reset(self):
        circ = parse_qasm("qreg q[2]; barrier q; reset q[0];")
        assert circ[0].name == "barrier"
        assert circ[0].qubits == (0, 1)
        assert circ[1].name == "reset"

    def test_measure_register_to_register(self):
        circ = parse_qasm("qreg q[2]; creg c[2]; measure q -> c;")
        assert [(g.qubits[0], g.cbits[0]) for g in circ] == [(0, 0), (1, 1)]

    def test_if_statement_emits_operation(self):
        circ = parse_qasm("qreg q[1]; creg c[1]; if (c==1) x q[0];")
        assert [g.name for g in circ] == ["x"]

    def test_opaque_gate_use_raises(self):
        with pytest.raises(QasmError, match="opaque"):
            parse_qasm("qreg q[1]; opaque magic a; magic q[0];")

    def test_unknown_gate_raises(self):
        with pytest.raises(QasmError, match="unknown gate"):
            parse_qasm("qreg q[1]; frobnicate q[0];")

    def test_unknown_register_raises(self):
        with pytest.raises(QasmError, match="unknown quantum register"):
            parse_qasm("qreg q[1]; h r[0];")

    def test_out_of_range_index_raises(self):
        with pytest.raises(QasmError, match="out of range"):
            parse_qasm("qreg q[1]; h q[3];")

    def test_syntax_error_reports_line(self):
        with pytest.raises(QasmError, match="line"):
            parse_qasm("qreg q[1];\nh q[0]")  # missing semicolon -> error at eof


class TestExporter:
    def test_roundtrip_preserves_gates(self):
        circ = Circuit(3, name="rt").h(0).cx(0, 1).rz(math.pi / 4, 2).swap(1, 2)
        circ.measure(0, 0)
        again = parse_qasm(circuit_to_qasm(circ))
        assert [g.name for g in again] == [g.name for g in circ]
        assert [g.qubits for g in again] == [g.qubits for g in circ]

    def test_roundtrip_preserves_parameters(self):
        circ = Circuit(1).rz(0.1234, 0).u3(0.1, 0.2, 0.3, 0)
        again = parse_qasm(circuit_to_qasm(circ))
        for original, parsed in zip(circ, again):
            assert parsed.params == pytest.approx(original.params)

    def test_pi_fractions_rendered_symbolically(self):
        circ = Circuit(1).rz(math.pi / 2, 0)
        assert "pi/2" in circuit_to_qasm(circ)

    def test_header_and_registers(self):
        text = circuit_to_qasm(Circuit(4).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[4];" in text

    def test_xx_gate_gets_declaration(self):
        circ = Circuit(2).add("xx", [0, 1])
        text = circuit_to_qasm(circ)
        assert "gate xx" in text


class TestSuiteQasmRoundtrip:
    def test_benchmark_circuits_roundtrip(self):
        from repro.workloads import qft, ghz
        for circ in (qft(4), ghz(5)):
            again = parse_qasm(circuit_to_qasm(circ))
            assert len(again) == len(circ)
            assert again.num_qubits == circ.num_qubits
