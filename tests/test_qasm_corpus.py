"""Tests for the embedded OpenQASM corpus: parsing, routing, semantics."""

import pytest

from repro.arch.devices import get_device
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.sabre.remapper import SabreRouter
from repro.mapping.verification import verify_routing
from repro.qasm.exporter import circuit_to_qasm
from repro.qasm.parser import parse_qasm
from repro.sim.sampling import hellinger_fidelity, probabilities_over_cbits
from repro.workloads.qasm_corpus import CORPUS, corpus_names, load, load_all


class TestCorpusParsing:
    def test_every_program_parses(self):
        circuits = load_all()
        assert len(circuits) == len(CORPUS)
        assert all(len(c) > 0 for c in circuits)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load("does_not_exist")

    def test_register_flattening(self):
        circuit = load("revlib_majority")
        # cin[1] + a[2] + b[2] + cout[1] physical registers flatten to 6 qubits.
        assert circuit.num_qubits == 6
        assert circuit.count_ops()["measure"] == 3

    def test_custom_gate_definitions_are_inlined(self):
        circuit = load("revlib_majority")
        names = set(circuit.count_ops())
        assert "maj" not in names and "uma" not in names
        assert "cx" in names

    def test_register_wide_operations_expand(self):
        circuit = load("grover3_qiskit")
        # `h q;` on a 3-qubit register expands to three H gates per occurrence.
        assert circuit.count_ops()["h"] >= 9

    def test_barriers_survive_parsing(self):
        circuit = load("teleport_quipper")
        assert circuit.count_ops()["barrier"] == 2

    def test_roundtrip_through_exporter(self):
        for name in corpus_names():
            circuit = load(name)
            reparsed = parse_qasm(circuit_to_qasm(circuit))
            assert len(reparsed) == len(circuit)
            assert reparsed.num_qubits == circuit.num_qubits


class TestCorpusRouting:
    @pytest.mark.parametrize("name", corpus_names())
    def test_corpus_routes_and_verifies_on_q20(self, name):
        circuit = load(name)
        device = get_device("ibm_q20_tokyo")
        result = CodarRouter().run(circuit, device)
        verify_routing(result, check_semantics=circuit.num_qubits <= 8)

    def test_measured_distributions_survive_routing(self):
        circuit = load("bell_measure")
        device = get_device("ibm_q16_melbourne")
        for router in (CodarRouter(), SabreRouter()):
            routed = router.run(circuit, device).routed
            fidelity = hellinger_fidelity(probabilities_over_cbits(circuit),
                                          probabilities_over_cbits(routed))
            assert fidelity == pytest.approx(1.0)
