"""Error-path coverage for the router/device registries.

The happy paths live in ``tests/test_service.py``; this module pins down the
failure contract — *which* exception, with *what* message — because the HTTP
layer maps these onto 400 responses and the CLI onto exit code 2, so the
types are API.
"""

import pytest

from repro.mapping.trivial import TrivialRouter
from repro.service.registry import (DEVICES, ROUTERS, Registry, build_device,
                                    build_router, device_spec)


class TestUnknownNames:
    def test_unknown_router_is_a_key_error_listing_known_names(self):
        with pytest.raises(KeyError, match="codar"):
            ROUTERS.normalize("tket")

    def test_unknown_device_is_a_key_error(self):
        with pytest.raises(KeyError, match="unknown device"):
            build_device("ibm_q999")

    def test_unknown_parametric_shape_is_not_parsed(self):
        # grid_2x (malformed) must not match the grid_RxC pattern.
        with pytest.raises(KeyError):
            device_spec("grid_2x")

    def test_describe_unknown_name_is_empty_not_an_error(self):
        assert ROUTERS.describe("definitely_not_registered") == ""

    def test_contains_rejects_non_strings(self):
        assert 42 not in ROUTERS
        assert None not in DEVICES


class TestDuplicateRegistration:
    def test_duplicate_raises_and_keeps_the_original(self):
        registry = Registry("router")
        registry.register("mine", TrivialRouter, "first")
        with pytest.raises(ValueError, match="already registered"):
            registry.register("mine", lambda: None, "second")
        assert registry.describe("mine") == "first"
        assert isinstance(registry.build("mine"), TrivialRouter)

    def test_dash_and_underscore_names_collide(self):
        # "my-router" and "my_router" canonicalise identically, so the
        # second registration is a duplicate, not a sibling.
        registry = Registry("router")
        registry.register("my-router", TrivialRouter)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("my_router", TrivialRouter)

    def test_overwrite_flag_replaces(self):
        registry = Registry("router")
        registry.register("mine", lambda: "old")
        registry.register("mine", lambda: "new", overwrite=True)
        assert registry.build("mine") == "new"


class TestBadParameters:
    def test_unknown_router_param_fails_in_the_factory_signature(self):
        with pytest.raises(TypeError, match="bogus_knob"):
            build_router({"name": "codar", "params": {"bogus_knob": 1}})

    def test_unknown_device_param_fails_loudly(self):
        with pytest.raises(TypeError):
            build_device({"name": "grid", "rows": 2, "cols": 2, "depth": 3})

    def test_missing_required_device_param(self):
        with pytest.raises(TypeError, match="cols"):
            build_device({"name": "grid", "rows": 2})

    def test_invalid_param_value_propagates(self):
        with pytest.raises(ValueError):
            build_device({"name": "line", "num_qubits": 0})

    def test_fixed_device_takes_no_params(self):
        with pytest.raises(TypeError):
            build_device({"name": "ibm_q20_tokyo", "params": {"rows": 2}})


class TestMalformedSpecs:
    def test_spec_dict_without_name(self):
        with pytest.raises(ValueError, match="'name' key"):
            ROUTERS.normalize({"params": {}})

    def test_spec_of_wrong_type(self):
        with pytest.raises(TypeError, match="router spec"):
            ROUTERS.normalize(42)
        with pytest.raises(TypeError, match="device spec"):
            DEVICES.normalize(["grid"])

    def test_customised_live_device_is_rejected_not_aliased(self):
        from repro.arch.devices import get_device
        from repro.arch.durations import GateDurationMap

        tuned = get_device("ibm_qx4").with_durations(
            GateDurationMap(single=2, two=5))
        with pytest.raises(ValueError, match="differs from the registered"):
            device_spec(tuned)
