"""Tests for the SABRE baseline and the trivial shortest-path router."""


from repro.arch.coupling import CouplingGraph
from repro.arch.devices import get_device
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.mapping.layout import Layout
from repro.mapping.sabre.heuristic import sabre_score
from repro.mapping.sabre.remapper import SabreConfig, SabreRouter, reverse_traversal_layout
from repro.mapping.trivial import TrivialRouter
from repro.mapping.verification import verify_routing


class TestSabreScore:
    def _setup(self):
        return CouplingGraph.line(4), Layout.identity(4), [1.0] * 4

    def test_lower_score_for_helpful_swap(self):
        coupling, layout, decay = self._setup()
        front = [Gate("cx", (0, 3))]
        helpful = sabre_score(0, 1, coupling, layout, front, [], decay)
        useless = sabre_score(1, 2, coupling, layout, front, [], decay)
        assert helpful < useless

    def test_extended_set_weighted(self):
        coupling, layout, decay = self._setup()
        front = [Gate("cx", (0, 1))]
        extended = [Gate("cx", (0, 3))]
        with_lookahead = sabre_score(2, 3, coupling, layout, front, extended, decay,
                                     extended_weight=0.5)
        without_lookahead = sabre_score(2, 3, coupling, layout, front, [], decay)
        assert with_lookahead != without_lookahead

    def test_decay_penalises_recently_swapped_qubits(self):
        coupling, layout, _ = self._setup()
        front = [Gate("cx", (0, 3))]
        fresh = sabre_score(0, 1, coupling, layout, front, [], [1.0, 1.0, 1.0, 1.0])
        decayed = sabre_score(0, 1, coupling, layout, front, [], [1.5, 1.0, 1.0, 1.0])
        assert decayed > fresh

    def test_empty_front_and_extended(self):
        coupling, layout, decay = self._setup()
        assert sabre_score(0, 1, coupling, layout, [], [], decay) == 0.0


class TestSabreRouting:
    def test_compliant_circuit_untouched(self):
        circ = Circuit(2).h(0).cx(0, 1)
        result = SabreRouter().run(circ, get_device("line", num_qubits=2))
        assert result.swap_count == 0

    def test_distant_cnot_routed(self):
        circ = Circuit(4).cx(0, 3)
        result = SabreRouter().run(circ, get_device("line", num_qubits=4),
                                   initial_layout=Layout.identity(4))
        assert result.swap_count >= 1
        verify_routing(result)

    def test_respects_dependency_order(self):
        circ = Circuit(3).h(0).cx(0, 1).cx(1, 2).t(2)
        result = SabreRouter().run(circ, get_device("line", num_qubits=3))
        verify_routing(result)

    def test_benchmarks_verify_on_tokyo(self):
        from repro.workloads import qft, qaoa_maxcut
        device = get_device("ibm_q20_tokyo")
        for circ in (qft(5), qaoa_maxcut(6)):
            result = SabreRouter().run(circ, device)
            verify_routing(result)

    def test_deterministic(self):
        from repro.workloads import qft
        device = get_device("ibm_q20_tokyo")
        layout = Layout.identity(20)
        a = SabreRouter().run(qft(5), device, initial_layout=layout)
        b = SabreRouter().run(qft(5), device, initial_layout=layout)
        assert a.routed == b.routed

    def test_swaps_tagged_as_routing(self):
        circ = Circuit(4).cx(0, 3)
        result = SabreRouter().run(circ, get_device("line", num_qubits=4),
                                   initial_layout=Layout.identity(4))
        assert all(g.is_routing_swap for g in result.routed if g.is_swap)

    def test_measurements_preserved(self):
        circ = Circuit(3).h(0).cx(0, 2).measure_all()
        result = SabreRouter().run(circ, get_device("line", num_qubits=3))
        assert result.routed.count_ops()["measure"] == 3

    def test_config_decay_interval(self):
        config = SabreConfig(decay_delta=0.01, decay_reset_interval=2,
                             extended_set_size=5)
        circ = Circuit(4).cx(0, 3).cx(3, 0).cx(1, 2)
        result = SabreRouter(config).run(circ, get_device("line", num_qubits=4))
        verify_routing(result)

    def test_duration_unawareness(self):
        # SABRE ignores durations while routing: its output gate sequence is
        # identical no matter which duration map the device carries.
        from repro.arch.durations import UNIFORM_DURATIONS
        from repro.workloads import qft
        circ = qft(5)
        layout = Layout.identity(20)
        fast = SabreRouter().run(circ, get_device("ibm_q20_tokyo"), initial_layout=layout)
        slow = SabreRouter().run(circ, get_device("ibm_q20_tokyo",
                                                  durations=UNIFORM_DURATIONS),
                                 initial_layout=layout)
        assert fast.routed == slow.routed


class TestReverseTraversalLayout:
    def test_produces_valid_layout(self):
        from repro.workloads import qft
        device = get_device("ibm_q20_tokyo")
        layout = reverse_traversal_layout(qft(5), device)
        assert sorted(layout.physical_list()) == list(range(20))

    def test_no_two_qubit_gates_returns_degree_layout(self):
        circ = Circuit(3).h(0).h(1).h(2)
        device = get_device("line", num_qubits=5)
        layout = reverse_traversal_layout(circ, device)
        assert sorted(layout.physical_list()) == list(range(5))

    def test_zero_rounds_is_plain_degree_layout(self):
        from repro.mapping.layout import initial_layout
        from repro.workloads import qft
        device = get_device("ibm_q20_tokyo")
        circ = qft(5)
        assert reverse_traversal_layout(circ, device, rounds=0) == \
            initial_layout(circ, device.coupling, "degree")

    def test_reverse_traversal_not_worse_on_average(self):
        # A weak sanity property: the refined layout should not blow up the
        # SABRE swap count compared to the naive identity layout.
        from repro.workloads import qft
        device = get_device("ibm_q20_tokyo")
        circ = qft(8)
        refined = reverse_traversal_layout(circ, device)
        sabre = SabreRouter()
        refined_swaps = sabre.run(circ, device, initial_layout=refined).swap_count
        identity_swaps = sabre.run(circ, device,
                                   initial_layout=Layout.identity(20)).swap_count
        assert refined_swaps <= identity_swaps + 5


class TestTrivialRouter:
    def test_moves_operand_along_shortest_path(self):
        circ = Circuit(4).cx(0, 3)
        result = TrivialRouter().run(circ, get_device("line", num_qubits=4),
                                     initial_layout=Layout.identity(4))
        assert result.swap_count == 2
        verify_routing(result)

    def test_verifies_on_benchmarks(self):
        from repro.workloads import qft, ghz
        device = get_device("grid", rows=3, cols=3)
        for circ in (qft(5), ghz(6)):
            verify_routing(TrivialRouter().run(circ, device))

    def test_usually_not_better_than_codar(self):
        from repro.mapping.codar.remapper import CodarRouter
        from repro.workloads import qft
        device = get_device("ibm_q20_tokyo")
        layout = Layout.identity(20)
        circ = qft(8)
        trivial = TrivialRouter().run(circ, device, initial_layout=layout)
        codar = CodarRouter().run(circ, device, initial_layout=layout)
        assert codar.weighted_depth <= trivial.weighted_depth
