"""Tests for shot sampling and count-distribution comparison."""

from collections import Counter

import pytest

from repro.arch.devices import get_device
from repro.core.circuit import Circuit
from repro.mapping.codar.remapper import CodarRouter
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.noise import NoiseModel
from repro.sim.sampling import (counts_from_density, hellinger_fidelity,
                                probabilities_over_cbits, sample_counts,
                                total_variation_distance)
from repro.workloads import generators as gen


class TestProbabilitiesOverCbits:
    def test_bell_pair_probabilities(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure_all()
        probabilities = probabilities_over_cbits(circuit)
        assert probabilities["00"] == pytest.approx(0.5)
        assert probabilities["11"] == pytest.approx(0.5)
        assert set(probabilities) == {"00", "11"}

    def test_unmeasured_qubits_are_traced_out(self):
        circuit = Circuit(2).h(1).x(0)
        circuit.measure(0, 0)
        probabilities = probabilities_over_cbits(circuit)
        assert probabilities == {"1": pytest.approx(1.0)}

    def test_measurement_map_respects_classical_targets(self):
        # Measure qubit 0 into classical bit 1 and qubit 1 into bit 0.
        circuit = Circuit(2).x(0)
        circuit.measure(0, 1)
        circuit.measure(1, 0)
        probabilities = probabilities_over_cbits(circuit)
        assert probabilities == {"10": pytest.approx(1.0)}

    def test_circuit_without_measurements_measures_everything(self):
        circuit = Circuit(2).x(1)
        probabilities = probabilities_over_cbits(circuit)
        assert probabilities == {"10": pytest.approx(1.0)}


class TestSampleCounts:
    def test_counts_sum_to_shots(self):
        circuit = gen.ghz(3)
        circuit.measure_all()
        counts = sample_counts(circuit, shots=500, seed=7)
        assert sum(counts.values()) == 500
        assert set(counts) <= {"000", "111"}

    def test_deterministic_with_seed(self):
        circuit = gen.qft(3)
        circuit.measure_all()
        assert sample_counts(circuit, shots=200, seed=3) == \
            sample_counts(circuit, shots=200, seed=3)

    def test_rejects_non_positive_shots(self):
        with pytest.raises(ValueError):
            sample_counts(Circuit(1).h(0), shots=0)

    def test_routed_circuit_reproduces_logical_counts(self):
        """Sampling the routed circuit gives the same distribution as the original."""
        circuit = gen.ghz(4)
        circuit.measure_all()
        device = get_device("ibm_q16_melbourne")
        routed = CodarRouter().run(circuit, device).routed
        original = probabilities_over_cbits(circuit)
        after_routing = probabilities_over_cbits(routed)
        assert hellinger_fidelity(original, after_routing) == pytest.approx(1.0)


class TestDensityCounts:
    def test_exact_distribution_from_density_matrix(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        rho = DensityMatrixSimulator(NoiseModel.noiseless()).run(
            circuit, {"h": 1, "cx": 2})
        distribution = counts_from_density(rho, 2)
        assert distribution["00"] == pytest.approx(0.5)
        assert distribution["11"] == pytest.approx(0.5)

    def test_sampled_shots_from_density_matrix(self):
        circuit = Circuit(1).h(0)
        rho = DensityMatrixSimulator().run(circuit, {"h": 1})
        counts = counts_from_density(rho, 1, shots=100, seed=5)
        assert isinstance(counts, Counter)
        assert sum(counts.values()) == 100


class TestDistributionDistances:
    def test_identical_distributions(self):
        counts = {"00": 512, "11": 512}
        assert hellinger_fidelity(counts, counts) == pytest.approx(1.0)
        assert total_variation_distance(counts, counts) == pytest.approx(0.0)

    def test_disjoint_distributions(self):
        a, b = {"00": 10}, {"11": 10}
        assert hellinger_fidelity(a, b) == pytest.approx(0.0)
        assert total_variation_distance(a, b) == pytest.approx(1.0)

    def test_known_intermediate_value(self):
        a = {"0": 1, "1": 1}
        b = {"0": 1}
        assert hellinger_fidelity(a, b) == pytest.approx(0.5)
        assert total_variation_distance(a, b) == pytest.approx(0.5)

    def test_normalisation_is_scale_invariant(self):
        a = {"0": 3, "1": 1}
        b = {"0": 300, "1": 100}
        assert hellinger_fidelity(a, b) == pytest.approx(1.0)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            hellinger_fidelity({}, {"0": 1})
