"""Tests for ASAP scheduling and weighted depth."""

import pytest

from repro.arch.durations import GateDurationMap
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.sim.scheduler import asap_schedule, critical_path, weighted_depth

DUR = GateDurationMap(single=1, two=2, swap=6)


class TestAsapSchedule:
    def test_empty_circuit(self):
        schedule = asap_schedule(Circuit(2), DUR)
        assert schedule.makespan == 0
        assert schedule.gates == []

    def test_serial_chain(self):
        circ = Circuit(1).h(0).t(0)
        schedule = asap_schedule(circ, DUR)
        assert [(sg.start, sg.finish) for sg in schedule.gates] == [(0, 1), (1, 2)]
        assert schedule.makespan == 2

    def test_parallel_gates_overlap(self):
        circ = Circuit(2).h(0).h(1)
        schedule = asap_schedule(circ, DUR)
        assert schedule.makespan == 1
        assert all(sg.start == 0 for sg in schedule.gates)

    def test_two_qubit_gate_waits_for_both_operands(self):
        circ = Circuit(2).t(0).cx(0, 1)
        schedule = asap_schedule(circ, DUR)
        cx = schedule.gates[1]
        assert cx.start == 1 and cx.finish == 3

    def test_duration_difference_enables_early_start(self):
        # The Fig. 2 scenario: T finishes at 1 while CX runs until 2, so a
        # gate needing only the T qubit can start at cycle 1.
        circ = Circuit(4).t(1).cx(0, 2).swap(1, 3)
        schedule = asap_schedule(circ, DUR)
        swap = schedule.gates[2]
        assert swap.start == 1

    def test_barrier_synchronises(self):
        circ = Circuit(2).h(0)
        circ.barrier(0, 1)
        circ.h(1)
        schedule = asap_schedule(circ, DUR)
        assert schedule.gates[-1].start == 1

    def test_weighted_depth_shorthand(self):
        circ = Circuit(2).cx(0, 1).swap(0, 1)
        assert weighted_depth(circ, DUR) == 8

    def test_accepts_plain_gate_sequence(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1))]
        schedule = asap_schedule(gates, DUR)
        assert schedule.makespan == 3
        assert schedule.num_qubits == 2

    def test_accepts_plain_dict_durations(self):
        circ = Circuit(1).h(0)
        assert weighted_depth(circ, {"h": 7}) == 7

    def test_unknown_gate_with_dict_durations_raises(self):
        circ = Circuit(1).h(0)
        with pytest.raises(KeyError):
            weighted_depth(circ, {"t": 1})

    def test_weighted_vs_unweighted_depth(self):
        # Same depth, different weighted depth, the core argument of the paper.
        fast = Circuit(2).t(0).t(1)
        slow = Circuit(2).cx(0, 1)
        assert fast.depth() == 1 and slow.depth() == 1
        assert weighted_depth(fast, DUR) == 1
        assert weighted_depth(slow, DUR) == 2


class TestScheduleStatistics:
    def test_busy_and_idle_time(self):
        circ = Circuit(2).cx(0, 1).t(0)
        schedule = asap_schedule(circ, DUR)
        assert schedule.busy_time(0) == 3
        assert schedule.busy_time(1) == 2
        assert schedule.idle_time(1) == 1

    def test_parallelism_metric(self):
        parallel = asap_schedule(Circuit(3).h(0).h(1).h(2), DUR)
        serial = asap_schedule(Circuit(1).h(0).t(0).s(0), DUR)
        assert parallel.parallelism() == pytest.approx(3.0)
        assert serial.parallelism() == pytest.approx(1.0)

    def test_gates_at_instant(self):
        circ = Circuit(2).cx(0, 1)
        schedule = asap_schedule(circ, DUR)
        assert len(schedule.gates_at(1.0)) == 1
        assert schedule.gates_at(2.0) == []

    def test_as_rows(self):
        rows = asap_schedule(Circuit(1).h(0), DUR).as_rows()
        assert rows == [{"gate": "h", "qubits": (0,), "start": 0.0, "finish": 1.0}]

    def test_critical_path_spans_makespan(self):
        circ = Circuit(3).h(0).cx(0, 1).cx(1, 2).t(2)
        schedule = asap_schedule(circ, DUR)
        chain = critical_path(schedule)
        assert chain[0].start == 0
        assert chain[-1].finish == schedule.makespan
        for earlier, later in zip(chain, chain[1:]):
            assert earlier.finish <= later.start
