"""Online compilation server: queue, scheduler, metrics, HTTP API, client.

The HTTP tests run a real :class:`~repro.server.http.CompileServer` on an
ephemeral port inside the test process and talk to it through the real
``urllib`` client — the full request path, not a mocked handler.
"""

import threading
import time

import pytest

from repro.server import (CompileClient, CompileServer, Histogram, JobQueue,
                          QueueClosedError, QueueFullError, Scheduler,
                          ServerError, ServerMetrics)
from repro.service import CompilationService, ResultCache, make_job
from repro.service.jobs import CompileOutcome
from repro.workloads.generators import ghz, qft


def _job(n: int = 3, router: str = "codar", **kwargs):
    return make_job(ghz(n), "ibm_q20_tokyo", router, **kwargs)


def _ok_outcome(ticket) -> CompileOutcome:
    return CompileOutcome(job_key=ticket.key, status="ok", summary={},
                          routed_qasm="")


# --------------------------------------------------------------------------- #
# Queue
# --------------------------------------------------------------------------- #
class TestJobQueue:
    def test_fifo_within_one_priority(self):
        queue = JobQueue()
        first, _ = queue.submit(_job(3))
        second, _ = queue.submit(_job(4))
        assert queue.pop(0) is first
        assert queue.pop(0) is second

    def test_lower_priority_value_runs_first(self):
        queue = JobQueue()
        background, _ = queue.submit(_job(3), priority=10)
        urgent, _ = queue.submit(_job(4), priority=-1)
        normal, _ = queue.submit(_job(5), priority=0)
        assert [queue.pop(0) for _ in range(3)] == [urgent, normal, background]

    def test_identical_jobs_coalesce_onto_one_ticket(self):
        queue = JobQueue()
        ticket, coalesced = queue.submit(_job(3))
        twin, twin_coalesced = queue.submit(_job(3))
        assert not coalesced and twin_coalesced
        assert twin is ticket and ticket.coalesced == 1
        assert queue.depth == 1

    def test_coalescing_attaches_while_running(self):
        queue = JobQueue()
        ticket, _ = queue.submit(_job(3))
        assert queue.pop(0) is ticket  # now running, no longer queued
        attached, coalesced = queue.submit(_job(3))
        assert coalesced and attached is ticket

    def test_finished_jobs_do_not_coalesce(self):
        queue = JobQueue()
        ticket, _ = queue.submit(_job(3))
        queue.pop(0)
        queue.finish(ticket, _ok_outcome(ticket))
        fresh, coalesced = queue.submit(_job(3))
        assert not coalesced and fresh is not ticket

    def test_different_jobs_do_not_coalesce(self):
        queue = JobQueue()
        queue.submit(_job(3))
        _, coalesced = queue.submit(_job(3, seed=1))
        assert not coalesced
        assert queue.depth == 2

    def test_coalesced_resubmission_escalates_priority(self):
        # An urgent twin must not be held back by its lazier original.
        queue = JobQueue()
        lazy, _ = queue.submit(_job(3), priority=10)
        ahead, _ = queue.submit(_job(4), priority=0)
        escalated, coalesced = queue.submit(_job(3), priority=-1)
        assert coalesced and escalated is lazy
        assert lazy.priority == -1
        assert queue.depth == 2  # the stale heap entry is not extra depth
        assert queue.pop(0) is lazy
        assert queue.pop(0) is ahead
        assert queue.pop(timeout=0.01) is None  # stale duplicate was skipped

    def test_coalescing_never_deescalates(self):
        queue = JobQueue()
        urgent, _ = queue.submit(_job(3), priority=-1)
        queue.submit(_job(3), priority=10)
        assert urgent.priority == -1
        assert queue.depth == 1

    def test_admission_control(self):
        queue = JobQueue(max_depth=2)
        queue.submit(_job(3))
        queue.submit(_job(4))
        with pytest.raises(QueueFullError, match="full"):
            queue.submit(_job(5))
        # ... but coalescing onto in-flight work is always admitted.
        _, coalesced = queue.submit(_job(3))
        assert coalesced

    def test_closed_queue_rejects_submissions(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.submit(_job(3))

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_finish_wakes_waiters(self):
        queue = JobQueue()
        ticket, _ = queue.submit(_job(3))
        seen = []
        waiter = threading.Thread(
            target=lambda: seen.append(ticket.wait(5.0)))
        waiter.start()
        queue.pop(0)
        queue.finish(ticket, _ok_outcome(ticket))
        waiter.join(5.0)
        assert seen and seen[0].ok

    def test_flush_fails_queued_tickets(self):
        queue = JobQueue()
        ticket, _ = queue.submit(_job(3))
        queue.close(drain=False)
        assert queue.flush("shutting down") == 1
        assert ticket.done and not ticket.outcome.ok
        assert ticket.outcome.error_type == "QueueClosedError"

    def test_ticket_snapshot_fields(self):
        queue = JobQueue()
        ticket, _ = queue.submit(_job(3), priority=7)
        record = ticket.snapshot()
        assert record["status"] == "queued"
        assert record["priority"] == 7
        assert record["kind"] == "compile"
        assert record["circuit"] == "ghz_3"
        assert record["device"] == "ibm_q20_tokyo"
        assert record["router"] == "codar"
        assert "wait_s" not in record  # not started yet

    def test_snapshot_reports_the_pipeline_route_stage_router(self):
        # A pipeline job's back-filled `router` field is vestigial — the
        # route stage decides; the snapshot must not lie about what runs.
        queue = JobQueue()
        from repro.service.jobs import CompileJob

        job = CompileJob.from_dict({
            "qasm": _job(3).qasm, "device": "ibm_q20_tokyo",
            "pipeline": ["parse", "layout",
                         {"name": "route", "params": {"router": "sabre"}}]})
        assert job.router["name"] == "codar"  # the back-filled default
        ticket, _ = queue.submit(job)
        assert ticket.snapshot()["router"] == "sabre"

    def test_snapshot_of_a_routeless_pipeline_has_no_router(self):
        queue = JobQueue()
        from repro.service.jobs import CompileJob

        job = CompileJob.from_dict({
            "qasm": _job(3).qasm, "device": "ibm_q20_tokyo",
            "pipeline": ["parse", "optimize", "schedule"]})
        ticket, _ = queue.submit(job)
        assert ticket.snapshot()["router"] is None

    def test_snapshot_marks_portfolio_jobs(self):
        from repro.service.jobs import PortfolioJob

        queue = JobQueue()
        job = PortfolioJob(qasm=_job(3).qasm, device="ibm_q20_tokyo",
                           candidates=["codar", "sabre"])
        ticket, _ = queue.submit(job)
        record = ticket.snapshot()
        assert record["kind"] == "portfolio"
        assert record["router"] == "portfolio"

    def test_invalid_max_depth(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)

    # ------------------------------------------------------------------ #
    # Priority-escalation edge cases: stale heap entries must never
    # corrupt depth accounting or double-fail tickets.
    # ------------------------------------------------------------------ #
    def test_stale_escalation_entry_never_underflows_depth(self):
        queue = JobQueue()
        ticket, _ = queue.submit(_job(3), priority=5)
        queue.submit(_job(3), priority=1)  # escalates; leaves a stale entry
        assert queue.depth == 1
        assert queue.pop(0) is ticket
        assert queue.depth == 0
        # The stale duplicate is skipped without touching the depth counter.
        assert queue.pop(timeout=0.01) is None
        assert queue.depth == 0
        queue.finish(ticket, _ok_outcome(ticket))
        assert queue.depth == 0 and queue.in_flight == 0

    def test_flush_after_escalation_fails_each_ticket_exactly_once(self):
        queue = JobQueue()
        first, _ = queue.submit(_job(3), priority=5)
        queue.submit(_job(3), priority=1)   # stale duplicate for `first`
        queue.submit(_job(3), priority=3)   # less urgent: no escalation/dup
        second, _ = queue.submit(_job(4))
        waits: list = []
        waiters = [threading.Thread(target=lambda t=t: waits.append(t.wait(5.0)))
                   for t in (first, second)]
        for waiter in waiters:
            waiter.start()
        queue.close(drain=False)
        assert queue.flush("restarting") == 2  # tickets, not heap entries
        for waiter in waiters:
            waiter.join(5.0)
        assert len(waits) == 2
        assert all(outcome is not None and not outcome.ok
                   for outcome in waits)
        assert first.outcome.error_type == "QueueClosedError"
        assert queue.depth == 0 and queue.in_flight == 0
        assert queue.flush("again") == 0  # idempotent: nothing left behind

    def test_flush_skips_stale_entries_of_running_tickets(self):
        queue = JobQueue()
        ticket, _ = queue.submit(_job(3), priority=5)
        queue.submit(_job(3), priority=1)
        assert queue.pop(0) is ticket  # running; its stale entry remains
        queue.close(drain=False)
        assert queue.flush() == 0      # the running ticket is untouched
        assert ticket.state == "running" and not ticket.done
        queue.finish(ticket, _ok_outcome(ticket))
        assert ticket.outcome.ok


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_histogram_percentiles(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(90):
            histogram.observe(0.005)
        for _ in range(10):
            histogram.observe(0.5)
        assert histogram.percentile(0.50) == 0.01
        assert histogram.percentile(0.95) == 1.0
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(0.0545)

    def test_histogram_overflow_lands_in_inf_bucket(self):
        histogram = Histogram(buckets=(0.01,))
        histogram.observe(99.0)
        assert histogram.cumulative_buckets() == [(0.01, 0), (float("inf"), 1)]
        # Every observation overflowed: the finite bounds know nothing, so
        # the percentile falls back to sum/count instead of reporting the
        # top bound (0.01 s for a 99 s observation — off by four decades).
        assert histogram.percentile(0.99) == pytest.approx(99.0)
        assert histogram.percentile(0.50) == pytest.approx(99.0)

    def test_histogram_partial_overflow_still_reports_bounds(self):
        histogram = Histogram(buckets=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(99.0)
        assert histogram.percentile(0.50) == 0.01  # covered by finite bucket
        assert histogram.percentile(0.99) == 0.1  # clipped to last bound

    def test_histogram_exemplar_tracks_slowest_bucket(self):
        histogram = Histogram(buckets=(0.01, 0.1))
        histogram.observe(0.005, "trace-fast")
        histogram.observe(0.05, "trace-slow")
        histogram.observe(0.002)  # untraced observations leave no exemplar
        exemplar = histogram.exemplar()
        assert exemplar == {"trace_id": "trace-slow", "value": 0.05,
                            "bucket_le": 0.1}
        histogram.observe(5.0, "trace-overflow")
        assert histogram.exemplar()["bucket_le"] == "+Inf"
        assert histogram.as_dict()["exemplar"]["trace_id"] == "trace-overflow"

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.percentile(0.5) == 0.0
        assert histogram.mean == 0.0

    def test_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.0)

    def test_prometheus_exposition(self):
        metrics = ServerMetrics()
        metrics.increment("submitted", 5)
        metrics.observe_job(0.01, 0.2, ok=True, cache_hit=True, coalesced=2)
        metrics.observe_job(0.02, 0.3, ok=False, cache_hit=False)
        metrics.register_gauge("queue_depth", lambda: 3)
        text = metrics.to_prometheus()
        assert "repro_server_jobs_submitted_total 5" in text
        assert "repro_server_jobs_completed_total 2" in text
        assert "repro_server_jobs_failed_total 1" in text
        assert "repro_server_jobs_coalesced_total 2" in text
        assert "repro_server_jobs_cache_hits_total 1" in text
        assert "repro_server_queue_depth 3" in text
        assert 'repro_server_job_wait_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_server_job_service_seconds_p95" in text
        assert "# TYPE repro_server_jobs_submitted_total counter" in text

    def test_snapshot_round_trips_to_json(self):
        import json

        metrics = ServerMetrics()
        metrics.observe_job(0.01, 0.1, ok=True, cache_hit=False)
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["completed"] == 1
        assert snapshot["service_seconds"]["count"] == 1


# --------------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------------- #
class TestScheduler:
    def _scheduler(self, **kwargs) -> Scheduler:
        kwargs.setdefault("workers", 2)
        return Scheduler(CompilationService(cache=ResultCache()), **kwargs)

    def test_runs_submitted_jobs(self):
        scheduler = self._scheduler()
        scheduler.start()
        try:
            ticket, coalesced = scheduler.submit(_job(3))
            outcome = ticket.wait(30.0)
            assert not coalesced and outcome is not None and outcome.ok
            assert outcome.summary["circuit"] == "ghz_3"
            assert scheduler.metrics.counter("completed") == 1
        finally:
            scheduler.stop()

    def test_errors_are_captured_not_raised(self):
        scheduler = self._scheduler()
        scheduler.start()
        try:
            bad = make_job("OPENQASM 2.0;\nqreg q[", "ibm_q20_tokyo", "codar")
            ticket, _ = scheduler.submit(bad)
            outcome = ticket.wait(30.0)
            assert outcome is not None and not outcome.ok
            assert outcome.error_type == "QasmError"
            assert scheduler.metrics.counter("failed") == 1
        finally:
            scheduler.stop()

    def test_pause_holds_work_and_resume_releases_it(self):
        scheduler = self._scheduler()
        scheduler.pause()
        scheduler.start()
        try:
            ticket, _ = scheduler.submit(_job(3))
            assert ticket.wait(0.2) is None  # nothing picks it up
            scheduler.resume()
            assert ticket.wait(30.0) is not None
        finally:
            scheduler.stop()

    def test_graceful_stop_drains_the_backlog(self):
        scheduler = self._scheduler(workers=1)
        scheduler.pause()
        scheduler.start()
        tickets = [scheduler.submit(_job(n))[0] for n in (3, 4, 5)]
        scheduler.resume()
        scheduler.stop(graceful=True)
        assert all(t.done and t.outcome.ok for t in tickets)

    def test_abrupt_stop_fails_the_backlog(self):
        scheduler = self._scheduler(workers=1)
        scheduler.pause()
        scheduler.start()
        tickets = [scheduler.submit(_job(n))[0] for n in (3, 4, 5)]
        scheduler.stop(graceful=False)
        assert all(t.done for t in tickets)
        assert any(t.outcome.error_type == "QueueClosedError" for t in tickets)

    def test_job_timeout_produces_timeout_outcome(self):
        class SlowService:
            cache = None

            @staticmethod
            def compile_one(job):
                time.sleep(0.5)  # sleep-ok: fake service simulating a slow compile
                return CompileOutcome(job_key=job.key, status="ok",
                                      summary={}, routed_qasm="")

        scheduler = Scheduler(SlowService(), workers=1, job_timeout=0.05)
        scheduler.start()
        try:
            ticket, _ = scheduler.submit(_job(3))
            outcome = ticket.wait(30.0)
            assert outcome is not None and not outcome.ok
            assert outcome.error_type == "TimeoutError"
        finally:
            scheduler.stop()

    def test_lookup_result_falls_back_to_the_cache(self):
        cache = ResultCache()
        service = CompilationService(cache=cache)
        scheduler = Scheduler(service, workers=1, max_records=1)
        scheduler.start()
        try:
            first, _ = scheduler.submit(_job(3))
            assert first.wait(30.0) is not None
            second, _ = scheduler.submit(_job(4))
            assert second.wait(30.0) is not None
            # ghz_3's ticket was evicted from the records window...
            assert scheduler.lookup(first.key) is None
            # ...but its result is still served, straight from the cache.
            outcome = scheduler.lookup_result(first.key)
            assert outcome is not None and outcome.ok and outcome.cache_hit
        finally:
            scheduler.stop()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Scheduler(CompilationService(), workers=0)


# --------------------------------------------------------------------------- #
# HTTP API end to end
# --------------------------------------------------------------------------- #
@pytest.fixture()
def server():
    with CompileServer(port=0, workers=2) as instance:
        yield instance


@pytest.fixture()
def client(server):
    return CompileClient(server.url)


class TestHttpApi:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert "metrics" in health and "cache" in health

    def test_submit_wait_returns_the_outcome(self, client):
        reply = client.submit(_job(3), wait=True, timeout=30.0)
        assert reply["outcome"]["status"] == "ok"
        assert reply["coalesced"] is False
        assert reply["outcome"]["summary"]["circuit"] == "ghz_3"

    def test_resubmission_is_a_cache_hit(self, client):
        cold = client.compile(_job(3))
        warm = client.compile(_job(3))
        assert not cold.cache_hit and warm.cache_hit
        assert cold.to_json() == warm.to_json()

    def test_async_submit_then_poll_result(self, client):
        job = _job(4)
        reply = client.submit(job)
        assert reply["status"] in ("queued", "running")
        payload = client.result(job.key, wait=True, timeout=30.0)
        assert payload["outcome"]["status"] == "ok"
        record = client.status(job.key)
        assert record["status"] == "done"
        assert record["wait_s"] >= 0 and record["service_s"] > 0

    def test_job_status_reports_the_pipeline_router_over_http(self, client):
        # `GET /jobs/<key>` must name the router the pipeline will actually
        # run, not the vestigial back-filled payload default ("codar").
        reply = client.submit(
            {"qasm": _job(3).qasm, "device": "ibm_q20_tokyo",
             "pipeline": ["parse", "layout",
                          {"name": "route", "params": {"router": "sabre"}}],
             "wait": True, "timeout": 60.0})
        record = client.status(reply["key"])
        assert record["router"] == "sabre"
        assert record["kind"] == "compile"

    def test_job_status_reports_portfolio_kind_over_http(self, client):
        from repro.service.jobs import PortfolioJob
        from repro.workloads.generators import ghz as _ghz

        job = PortfolioJob.from_circuit(_ghz(3), "ibm_q20_tokyo",
                                        candidates=["codar", "sabre"])
        client.portfolio(job, timeout=120.0)
        record = client.status(job.key)
        assert record["kind"] == "portfolio"
        assert record["router"] == "portfolio"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.status("f" * 64)
        assert excinfo.value.status == 404
        with pytest.raises(ServerError) as excinfo:
            client.result("f" * 64)
        assert excinfo.value.status == 404

    def test_pending_result_is_202(self, server, client):
        server.scheduler.pause()
        time.sleep(0.2)  # sleep-ok: let in-pop workers settle behind the pause gate
        job = _job(5)
        client.submit(job)
        with pytest.raises(ServerError) as excinfo:
            client.result(job.key)
        assert excinfo.value.status == 202
        server.scheduler.resume()

    def test_malformed_job_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.submit({"qasm": "OPENQASM 2.0;"})  # missing device/router
        assert excinfo.value.status == 400

    def test_unknown_router_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.submit({"qasm": "OPENQASM 2.0;", "device": "ibm_q20_tokyo",
                           "router": "qiskit"})
        assert excinfo.value.status == 400

    def test_oversized_body_is_413_and_closes_the_connection(self, server):
        import http.client

        from repro.server.http import MAX_BODY_BYTES

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/jobs")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            connection.send(b"x" * 64)  # server replies before reading it all
            reply = connection.getresponse()
            # The body was never drained, so the server must drop the
            # keep-alive connection instead of desyncing the stream.
            assert reply.status == 413
            assert reply.headers.get("Connection") == "close"
        finally:
            connection.close()

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_queue_full_is_429_with_retry_after(self):
        with CompileServer(port=0, workers=1, max_depth=1) as server:
            server.scheduler.pause()
            # A worker already blocked inside pop() still grabs one job;
            # give it a poll interval to settle behind the pause gate.
            time.sleep(0.2)  # sleep-ok: let in-pop workers settle behind the pause gate
            client = CompileClient(server.url)
            client.submit(_job(3))
            with pytest.raises(ServerError) as excinfo:
                client.submit(_job(4))
            assert excinfo.value.status == 429
            server.scheduler.resume()

    def test_metrics_exposition_over_http(self, client):
        client.compile(_job(3))
        text = client.metrics_text()
        assert "repro_server_jobs_submitted_total 1" in text
        assert "repro_server_job_service_seconds_count 1" in text
        samples = client.metrics()
        assert samples["repro_server_jobs_completed_total"] == 1.0

    def test_disk_cache_survives_a_server_restart(self, tmp_path):
        job = _job(3)
        with CompileServer(port=0, workers=1,
                           cache=ResultCache(tmp_path / "cache")) as first:
            cold = CompileClient(first.url).compile(job)
        with CompileServer(port=0, workers=1,
                           cache=ResultCache(tmp_path / "cache")) as second:
            # Never submitted here — served straight from the disk tier.
            payload = CompileClient(second.url).result(job.key)
        assert payload["cache_hit"] is True
        assert payload["outcome"] == cold.to_dict()


# --------------------------------------------------------------------------- #
# CLI integration: repro submit / status / routers / --version
# --------------------------------------------------------------------------- #
class TestServerCli:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_routers_command_lists_the_registry(self, capsys):
        from repro.cli import main
        from repro.service.registry import ROUTERS

        assert main(["routers"]) == 0
        out = capsys.readouterr().out
        for name in ROUTERS.names():
            assert name in out
        assert "duration-aware" in out  # descriptions are printed too

    def test_serve_parser_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--server-workers", "3",
             "--max-depth", "9", "--job-timeout", "5"])
        assert args.port == 0 and args.server_workers == 3
        assert args.max_depth == 9 and args.job_timeout == 5.0

    def test_submit_and_status_against_a_live_server(self, server, tmp_path,
                                                     capsys):
        from repro.cli import main
        from repro.qasm import circuit_to_qasm

        qasm = tmp_path / "bell.qasm"
        qasm.write_text(circuit_to_qasm(ghz(3)))
        code = main(["submit", str(qasm), "--url", server.url,
                     "--device", "ibm_q20_tokyo", "--router", "codar"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ok" in out and "swaps=" in out

        assert main(["status", "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert "submitted=1" in out and "completed=1" in out

    def test_submit_async_prints_the_key(self, server, tmp_path, capsys):
        from repro.cli import main
        from repro.qasm import circuit_to_qasm

        qasm = tmp_path / "bell.qasm"
        qasm.write_text(circuit_to_qasm(ghz(4)))
        assert main(["submit", str(qasm), "--url", server.url,
                     "--async"]) == 0
        out = capsys.readouterr().out
        assert "key=" in out
        key = out.rsplit("key=", 1)[1].strip()
        CompileClient(server.url).result(key, wait=True, timeout=30.0)
        assert main(["status", key, "--url", server.url]) == 0
        assert '"status": "done"' in capsys.readouterr().out

    def test_submit_unreachable_server_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        from repro.qasm import circuit_to_qasm

        qasm = tmp_path / "bell.qasm"
        qasm.write_text(circuit_to_qasm(ghz(3)))
        code = main(["submit", str(qasm), "--url", "http://127.0.0.1:9"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_status_unreachable_server_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["status", "--url", "http://127.0.0.1:9"]) == 2
        assert "error:" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# The acceptance test: concurrent identical submissions coalesce
# --------------------------------------------------------------------------- #
class TestCoalescingEndToEnd:
    def test_concurrent_identical_submissions_compile_once(self, server):
        """ISSUE 2 acceptance: >= 4 concurrent clients, one compilation."""
        server.scheduler.pause()  # hold the queue so every client attaches
        time.sleep(0.2)  # sleep-ok: let in-pop workers settle behind the pause gate
        job = make_job(qft(4), "ibm_q20_tokyo", "codar")
        replies: list[dict] = []
        errors: list[Exception] = []

        def submit():
            own_client = CompileClient(server.url)  # one client per thread
            try:
                replies.append(own_client.submit(job, wait=True, timeout=60.0))
            except Exception as exc:  # noqa: BLE001 — surfaced via `errors`
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(5)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10.0
        while server.metrics.counter("coalesced") < 4:
            assert time.monotonic() < deadline, "submissions never coalesced"
            time.sleep(0.01)  # sleep-ok: bounded poll for coalesced counter
        server.scheduler.resume()
        for thread in threads:
            thread.join(60.0)

        assert not errors
        assert len(replies) == 5
        # Exactly one compilation ran...
        assert server.service.stats.executed == 1
        assert server.service.stats.cache_hits == 0
        # ...every client got the identical outcome...
        outcomes = [reply["outcome"] for reply in replies]
        assert all(outcome == outcomes[0] for outcome in outcomes)
        assert outcomes[0]["status"] == "ok"
        # ...and /metrics reports the coalesced count.
        samples = CompileClient(server.url).metrics()
        assert samples["repro_server_jobs_coalesced_total"] == 4.0
        assert samples["repro_server_jobs_submitted_total"] == 1.0
