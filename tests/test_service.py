"""Tests for the batch compilation service (registries, jobs, executor, API)."""

import pytest

from repro.arch.devices import get_device
from repro.mapping.base import RoutingResult
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.sabre.remapper import SabreRouter
from repro.qasm import circuit_to_qasm, parse_qasm
from repro.service import (CompilationService, CompileJob, CompileOutcome,
                           ROUTERS, ResultCache, build_device,
                           build_router, compile_batch, compile_one,
                           device_spec, make_job, router_spec, sweep)
from repro.workloads.generators import ghz, qft


def _stable(outcome) -> dict:
    """Outcome dict without the wall-clock fields (fresh runs differ there)."""
    data = outcome.to_dict()
    data.pop("elapsed_s", None)
    if data["summary"] is not None:
        data["summary"] = {k: v for k, v in data["summary"].items()
                           if k != "runtime_s"}
        extra = data["summary"].get("extra")
        if extra is not None:
            # Per-stage timing records are wall-clock too.
            data["summary"]["extra"] = {k: v for k, v in extra.items()
                                        if k != "stages"}
    return data


# --------------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------------- #
class TestRegistries:
    def test_router_names(self):
        assert {"codar", "sabre", "astar", "trivial",
                "codar_noise_aware"} <= set(ROUTERS.names())

    def test_build_router_from_string(self):
        assert build_router("codar").name == "codar"
        assert build_router("sabre").name == "sabre"

    def test_dash_alias_normalises(self):
        spec = ROUTERS.normalize("codar-noise-aware")
        assert spec["name"] == "codar_noise_aware"

    def test_parameterized_router_spec(self):
        router = build_router({"name": "codar", "params": {"use_commutativity": False}})
        assert router.config.use_commutativity is False

    def test_inline_params_equal_nested_params(self):
        inline = ROUTERS.normalize({"name": "sabre", "decay_delta": 0.01})
        nested = ROUTERS.normalize({"name": "sabre", "params": {"decay_delta": 0.01}})
        assert inline == nested

    def test_unknown_router_raises(self):
        with pytest.raises(KeyError):
            ROUTERS.normalize("qiskit")

    def test_bad_router_params_raise(self):
        with pytest.raises(TypeError):
            build_router({"name": "codar", "params": {"bogus_knob": 1}})

    def test_live_router_round_trips_to_spec(self):
        assert router_spec(SabreRouter())["name"] == "sabre"

    def test_fixed_device_spec(self):
        device = build_device("ibm_q20_tokyo")
        assert device.num_qubits == 20

    def test_parametric_device_spec(self):
        device = build_device({"name": "grid", "rows": 3, "cols": 4})
        assert device.num_qubits == 12

    def test_parametric_name_is_parsed_back(self):
        # A Device built outside the registry still describes itself.
        device = get_device("grid", rows=2, cols=5)
        spec = device_spec(device)
        assert spec == {"name": "grid", "params": {"rows": 2, "cols": 5}}
        assert build_device(spec).num_qubits == 10
        assert device_spec(get_device("line", num_qubits=7))["params"] == {
            "num_qubits": 7}

    def test_fixed_name_wins_over_pattern(self):
        # grid_6x6 is a registered fixed device, not a parametric parse.
        assert device_spec("grid_6x6") == {"name": "grid_6x6", "params": {}}

    def test_customized_device_is_not_silently_aliased(self):
        from repro.arch.durations import GateDurationMap

        stock = get_device("ibm_q20_tokyo")
        assert device_spec(stock)["name"] == "ibm_q20_tokyo"
        tuned = stock.with_durations(GateDurationMap(single=3, two=9))
        with pytest.raises(ValueError, match="differs from the registered"):
            device_spec(tuned)

    def test_registry_is_extensible(self):
        ROUTERS.register("codar_test_variant", lambda: CodarRouter(),
                         "test entry")
        try:
            assert build_router("codar_test_variant").name == "codar"
            with pytest.raises(ValueError):
                ROUTERS.register("codar_test_variant", lambda: CodarRouter())
        finally:
            ROUTERS._factories.pop("codar_test_variant")
            ROUTERS._descriptions.pop("codar_test_variant")


# --------------------------------------------------------------------------- #
# Jobs and outcomes
# --------------------------------------------------------------------------- #
class TestCompileJob:
    def test_from_circuit_serialises_qasm(self):
        job = make_job(ghz(4), "ibm_q20_tokyo", "codar")
        assert job.circuit_name == "ghz_4"
        assert "OPENQASM 2.0" in job.qasm
        assert job.device == {"name": "ibm_q20_tokyo", "params": {}}

    def test_dict_round_trip(self):
        job = make_job(qft(4), "grid_6x6", "sabre", layout_strategy="identity",
                       seed=7)
        clone = CompileJob.from_dict(job.to_dict())
        assert clone == job
        assert clone.key == job.key

    def test_key_changes_with_every_spec_field(self):
        base = make_job(qft(4), "ibm_q20_tokyo", "codar")
        assert base.key != make_job(ghz(4), "ibm_q20_tokyo", "codar").key
        assert base.key != make_job(qft(4), "grid_6x6", "codar").key
        assert base.key != make_job(qft(4), "ibm_q20_tokyo", "sabre").key
        assert base.key != make_job(qft(4), "ibm_q20_tokyo", "codar",
                                    layout_strategy="identity").key
        assert base.key != make_job(qft(4), "ibm_q20_tokyo", "codar", seed=1).key

    def test_router_params_change_the_key(self):
        plain = make_job(qft(4), "ibm_q20_tokyo", "codar")
        tuned = make_job(qft(4), "ibm_q20_tokyo",
                         {"name": "codar", "params": {"use_commutativity": False}})
        assert plain.key != tuned.key

    def test_effective_seed_is_deterministic(self):
        job = make_job(qft(4), "ibm_q20_tokyo", "codar")
        twin = make_job(qft(4), "ibm_q20_tokyo", "codar")
        assert job.effective_seed == twin.effective_seed
        assert make_job(qft(4), "ibm_q20_tokyo", "codar",
                        seed=42).effective_seed == 42


class TestCompileOutcome:
    def test_elapsed_s_is_measured_and_serialised(self, tmp_path):
        # The executor stamps wall-clock latency on fresh outcomes, and a
        # cache replay reports the original measurement, not zero.
        cache = ResultCache(tmp_path / "cache")
        fresh = compile_one(ghz(3), "ibm_q20_tokyo", "codar", cache=cache)
        assert fresh.elapsed_s is not None and fresh.elapsed_s > 0
        assert fresh.to_dict()["elapsed_s"] == fresh.elapsed_s
        replay = compile_one(ghz(3), "ibm_q20_tokyo", "codar", cache=cache)
        assert replay.cache_hit
        assert replay.elapsed_s == fresh.elapsed_s

    def test_cache_hit_not_serialised(self):
        outcome = CompileOutcome(job_key="k", status="ok", summary={},
                                 routed_qasm="", cache_hit=True)
        data = outcome.to_dict()
        assert "cache_hit" not in data
        assert CompileOutcome.from_dict(data).cache_hit is False

    def test_routing_result_rejects_failures(self):
        outcome = CompileOutcome(job_key="k", status="error", error="boom",
                                 error_type="ValueError")
        with pytest.raises(ValueError, match="boom"):
            outcome.routing_result()

    def test_routing_result_names_the_missing_job(self):
        outcome = compile_one(ghz(3), "ibm_q20_tokyo", "codar")
        with pytest.raises(ValueError, match="originating CompileJob"):
            outcome.routing_result()


# --------------------------------------------------------------------------- #
# Summary round-trip (satellite: lossless JSON round-trip)
# --------------------------------------------------------------------------- #
class TestSummaryRoundTrip:
    def test_summary_has_provenance_fields(self):
        result = CodarRouter().run(qft(4), get_device("ibm_q20_tokyo"),
                                   layout_strategy="random", seed=11)
        summary = result.summary()
        assert summary["layout_strategy"] == "random"
        assert summary["seed"] == 11
        assert result.extra["seed"] == 11
        assert sorted(summary["initial_layout"]) == list(range(20))
        assert sorted(summary["final_layout"]) == list(range(20))

    def test_lossless_round_trip(self):
        result = CodarRouter().run(qft(5), get_device("ibm_q20_tokyo"))
        summary = result.summary(include_circuits=True)
        rebuilt = RoutingResult.from_summary(summary)
        assert rebuilt.summary(include_circuits=True) == summary
        assert rebuilt.routed == result.routed
        assert rebuilt.initial_layout == result.initial_layout
        assert rebuilt.final_layout == result.final_layout

    def test_from_summary_requires_circuits(self):
        result = CodarRouter().run(qft(4), get_device("ibm_q20_tokyo"))
        with pytest.raises(ValueError, match="original"):
            RoutingResult.from_summary(result.summary())


# --------------------------------------------------------------------------- #
# Executor
# --------------------------------------------------------------------------- #
class TestCompilationService:
    def test_serial_batch_preserves_order(self):
        circuits = [ghz(3), qft(4), ghz(5)]
        jobs = [make_job(c, "ibm_q20_tokyo", "codar") for c in circuits]
        outcomes = CompilationService().compile_batch(jobs)
        assert [o.ok for o in outcomes] == [True, True, True]
        assert [o.summary["circuit"] for o in outcomes] == [
            "ghz_3", "qft_4", "ghz_5"]

    def test_parallel_matches_serial(self):
        jobs = [make_job(qft(n), "ibm_q20_tokyo", router)
                for n in (3, 4, 5) for router in ("codar", "sabre")]
        serial = CompilationService().compile_batch(jobs)
        parallel = CompilationService(workers=2).compile_batch(jobs)
        assert [_stable(o) for o in serial] == [_stable(o) for o in parallel]

    def test_one_bad_job_does_not_kill_the_batch(self):
        jobs = [make_job(ghz(3), "ibm_q20_tokyo", "codar"),
                make_job("OPENQASM 2.0;\nqreg q[", "ibm_q20_tokyo", "codar"),
                # 12-qubit circuit cannot fit a 5-qubit bow-tie device.
                make_job(qft(12), "ibm_qx4", "codar"),
                make_job(ghz(4), "ibm_q20_tokyo", "sabre")]
        outcomes = CompilationService(workers=2).compile_batch(jobs)
        assert [o.ok for o in outcomes] == [True, False, False, True]
        assert outcomes[1].error_type == "QasmError"
        assert outcomes[2].error_type == "ValueError"

    def test_cache_short_circuits_and_replays_identically(self, tmp_path):
        cache = ResultCache(tmp_path)
        service = CompilationService(cache=cache)
        jobs = [make_job(qft(4), "ibm_q20_tokyo", "codar")]
        first = service.compile_batch(jobs)
        second = service.compile_batch(jobs)
        assert not first[0].cache_hit and second[0].cache_hit
        assert first[0].to_json() == second[0].to_json()
        assert service.stats.cache_hits == 1
        assert service.stats.executed == 1

    def test_errors_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        service = CompilationService(cache=cache)
        job = make_job("OPENQASM 2.0;\nbroken", "ibm_q20_tokyo", "codar")
        assert not service.compile_one(job).ok
        assert not service.compile_one(job).cache_hit
        assert cache.stats.writes == 0

    def test_progress_callback(self):
        seen = []
        jobs = [make_job(ghz(3), "ibm_q20_tokyo", "codar")]
        CompilationService().compile_batch(jobs, progress=seen.append)
        assert len(seen) == 1
        assert "ghz_3" in seen[0] and "ibm_q20_tokyo" in seen[0]

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            CompilationService(workers=0)


# --------------------------------------------------------------------------- #
# API facade
# --------------------------------------------------------------------------- #
class TestApi:
    def test_compile_one(self):
        outcome = compile_one(ghz(4), "ibm_q16_melbourne", "sabre")
        assert outcome.ok
        assert outcome.summary["device"] == "ibm_q16_melbourne"
        result = outcome.routing_result(
            make_job(ghz(4), "ibm_q16_melbourne", "sabre"))
        assert result.original.name == "ghz_4"
        assert len(result.routed) >= len(result.original)

    def test_sweep_skips_oversized(self):
        outcomes = sweep([ghz(4), qft(12)], ["ibm_qx4", "ibm_q20_tokyo"],
                         routers=("codar",))
        # qft_12 does not fit the 5-qubit ibm_qx4, so 3 jobs run, all ok.
        assert len(outcomes) == 3
        assert all(o.ok for o in outcomes)

    def test_sweep_reports_oversized_when_asked(self):
        outcomes = sweep([qft(12)], ["ibm_qx4"], routers=("codar",),
                         skip_oversized=False)
        assert len(outcomes) == 1
        assert outcomes[0].error_type == "ValueError"

    def test_top_level_exports(self):
        import repro

        for name in ("CompileJob", "CompileOutcome", "CompilationService",
                     "ResultCache", "compile_one", "compile_batch", "sweep"):
            assert hasattr(repro, name)


# --------------------------------------------------------------------------- #
# Determinism regression (satellite: same spec twice => identical routed QASM)
# --------------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize("router", ["codar", "sabre", "astar", "trivial"])
    def test_same_job_spec_twice_is_byte_identical(self, router):
        jobs = [make_job(qft(5), "ibm_q20_tokyo", router,
                         layout_strategy="reverse_traversal")
                for _ in range(2)]
        first, second = compile_batch(jobs)
        assert first.routed_qasm == second.routed_qasm
        assert _stable(first) == _stable(second)

    def test_random_layout_without_seed_is_still_reproducible(self):
        # The derived per-job seed makes even the "random" strategy replayable.
        jobs = [make_job(qft(5), "ibm_q20_tokyo", "codar",
                         layout_strategy="random")
                for _ in range(2)]
        first, second = compile_batch(jobs)
        assert first.ok and second.ok
        assert first.summary["seed"] == second.summary["seed"]
        assert first.routed_qasm == second.routed_qasm

    def test_fresh_run_matches_cached_run(self, tmp_path):
        job = make_job(qft(5), "ibm_q20_tokyo", "codar",
                       layout_strategy="reverse_traversal")
        cached = CompilationService(cache=ResultCache(tmp_path))
        fresh = CompilationService()
        warmup = cached.compile_one(job)
        replay = cached.compile_one(job)
        recompute = fresh.compile_one(job)
        assert replay.cache_hit
        # A cache replay is byte-identical; a fresh recompute matches on
        # everything but the wall-clock field.
        assert warmup.to_json() == replay.to_json()
        assert _stable(warmup) == _stable(recompute)

    def test_sibling_jobs_share_the_initial_mapping(self):
        # The paper's methodology: CODAR and SABRE start from the same
        # reverse-traversal layout.  With a pinned seed the two jobs report
        # identical initial layouts.
        jobs = [make_job(qft(5), "ibm_q20_tokyo", router,
                         layout_strategy="reverse_traversal", seed=0)
                for router in ("codar", "sabre")]
        codar, sabre = compile_batch(jobs)
        assert codar.summary["initial_layout"] == sabre.summary["initial_layout"]

    def test_routed_qasm_parses_back(self):
        outcome = compile_one(qft(5), "ibm_q20_tokyo", "codar")
        routed = parse_qasm(outcome.routed_qasm)
        assert circuit_to_qasm(routed) == outcome.routed_qasm
