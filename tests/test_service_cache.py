"""Cache-focused coverage: accounting, cross-process key stability,
corruption tolerance, spec-change invalidation, the memory-tier LRU cap
and concurrent writers on the disk tier."""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (CompilationService, ResultCache, compile_batch,
                           make_job)
from repro.service.cache import CacheStats
from repro.workloads.generators import ghz, qft


def _outcome(key: str = "k") -> dict:
    return {"job_key": key, "status": "ok", "summary": {"swaps": 1},
            "routed_qasm": "OPENQASM 2.0;", "error": None, "error_type": None}


# --------------------------------------------------------------------------- #
# Hit/miss accounting
# --------------------------------------------------------------------------- #
class TestAccounting:
    def test_stats_track_every_lookup(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("a" * 64) is None
        cache.put("a" * 64, _outcome("a" * 64))
        assert cache.get("a" * 64) is not None
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.hit_rate == 0.5
        assert stats.as_dict()["hit_rate"] == 0.5

    def test_empty_stats(self):
        assert CacheStats().hit_rate == 0.0

    def test_memory_only_cache(self):
        cache = ResultCache()  # no directory
        cache.put("k", _outcome())
        assert cache.get("k") == _outcome()
        assert len(cache) == 1
        assert cache.disk_bytes() == 0

    def test_disk_only_cache(self, tmp_path):
        cache = ResultCache(tmp_path, memory=False)
        cache.put("ab" * 32, _outcome("ab" * 32))
        assert cache.get("ab" * 32) is not None
        assert cache.disk_bytes() > 0

    def test_clear_empties_both_tiers(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(3):
            key = f"{index:02d}" + "0" * 62
            cache.put(key, _outcome(key))
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.get("00" + "0" * 62) is None

    def test_get_returns_a_copy(self):
        cache = ResultCache()
        cache.put("k", _outcome())
        cache.get("k")["status"] = "mutated"
        assert cache.get("k")["status"] == "ok"

    def test_nested_dicts_are_not_aliased(self):
        # A caller mutating a returned outcome's summary must not corrupt
        # later hits (the memory tier stores serialised JSON, not objects).
        cache = ResultCache()
        cache.put("k", _outcome())
        cache.get("k")["summary"]["swaps"] = 999
        assert cache.get("k")["summary"]["swaps"] == 1
        source = _outcome()
        cache.put("k2", source)
        source["summary"]["swaps"] = 999
        assert cache.get("k2")["summary"]["swaps"] == 1


# --------------------------------------------------------------------------- #
# Key stability across processes
# --------------------------------------------------------------------------- #
class TestKeyStability:
    def test_key_is_stable_across_processes(self):
        job = make_job(qft(4), "ibm_q20_tokyo", "codar",
                       layout_strategy="reverse_traversal", seed=3)
        script = (
            "import json, sys\n"
            "from repro.service.jobs import CompileJob\n"
            "job = CompileJob.from_dict(json.loads(sys.stdin.read()))\n"
            "print(job.key)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run([sys.executable, "-c", script],
                               input=json.dumps(job.to_dict()),
                               capture_output=True, text=True, env=env,
                               check=True)
        assert child.stdout.strip() == job.key

    def test_disk_entries_survive_a_new_cache_instance(self, tmp_path):
        first = ResultCache(tmp_path)
        job = make_job(ghz(3), "ibm_q20_tokyo", "codar")
        CompilationService(cache=first).compile_one(job)
        # A brand-new instance (fresh process analogue) sees the same entry.
        second = ResultCache(tmp_path)
        outcome = CompilationService(cache=second).compile_one(job)
        assert outcome.cache_hit
        assert second.stats.hits == 1


# --------------------------------------------------------------------------- #
# Corruption tolerance
# --------------------------------------------------------------------------- #
class TestCorruptionTolerance:
    def _cache_file(self, tmp_path, job):
        return tmp_path / job.key[:2] / f"{job.key}.json"

    def test_truncated_entry_recomputes_not_crashes(self, tmp_path):
        job = make_job(ghz(3), "ibm_q20_tokyo", "codar")
        CompilationService(cache=ResultCache(tmp_path)).compile_one(job)
        path = self._cache_file(tmp_path, job)
        path.write_text(path.read_text()[:20])  # truncate mid-JSON
        cache = ResultCache(tmp_path)
        outcome = CompilationService(cache=cache).compile_one(job)
        assert outcome.ok and not outcome.cache_hit
        assert cache.stats.corrupt == 1
        # The slot healed: the recompute was written back and hits again.
        assert CompilationService(cache=cache).compile_one(job).cache_hit

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xff not json")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # bad entry was deleted

    def test_key_mismatch_is_treated_as_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "2" * 62
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(_outcome("some-other-key")))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_non_dict_payload_is_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "3" * 62
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1


# --------------------------------------------------------------------------- #
# Invalidation on spec changes
# --------------------------------------------------------------------------- #
class TestInvalidation:
    def test_router_spec_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        service = CompilationService(cache=cache)
        circuit = qft(4)
        service.compile_one(make_job(circuit, "ibm_q20_tokyo", "codar"))
        tuned = service.compile_one(make_job(
            circuit, "ibm_q20_tokyo",
            {"name": "codar", "params": {"use_fine_priority": False}}))
        assert not tuned.cache_hit
        renamed = service.compile_one(make_job(circuit, "ibm_q20_tokyo", "sabre"))
        assert not renamed.cache_hit
        same = service.compile_one(make_job(circuit, "ibm_q20_tokyo", "codar"))
        assert same.cache_hit

    def test_device_and_layout_changes_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        circuit = qft(4)
        jobs = [make_job(circuit, "ibm_q20_tokyo", "codar"),
                make_job(circuit, "grid_6x6", "codar"),
                make_job(circuit, "ibm_q20_tokyo", "codar",
                         layout_strategy="identity"),
                make_job(circuit, "ibm_q20_tokyo", "codar", seed=5)]
        outcomes = compile_batch(jobs, cache=cache)
        assert all(o.ok and not o.cache_hit for o in outcomes)
        assert len(cache) == 4

    def test_schema_version_participates_in_key(self, monkeypatch):
        from repro.service import jobs as jobs_module

        job = make_job(qft(4), "ibm_q20_tokyo", "codar")
        before = job.key
        monkeypatch.setattr(jobs_module, "SCHEMA_VERSION",
                            jobs_module.SCHEMA_VERSION + 1)
        assert job.key != before


# --------------------------------------------------------------------------- #
# Memory-tier LRU cap (long-running servers must stay bounded)
# --------------------------------------------------------------------------- #
def _key(index: int) -> str:
    return f"{index:02d}" + "a" * 62


class TestLruCap:
    def test_oldest_entry_is_evicted_past_the_cap(self):
        cache = ResultCache(max_entries=2)
        for index in range(3):
            cache.put(_key(index), _outcome(_key(index)))
        assert cache.get(_key(0)) is None  # evicted
        assert cache.get(_key(1)) is not None
        assert cache.get(_key(2)) is not None
        assert cache.stats.evictions == 1
        assert cache.stats.as_dict()["evictions"] == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put(_key(0), _outcome(_key(0)))
        cache.put(_key(1), _outcome(_key(1)))
        assert cache.get(_key(0)) is not None  # 0 is now most recent
        cache.put(_key(2), _outcome(_key(2)))  # evicts 1, not 0
        assert cache.get(_key(0)) is not None
        assert cache.get(_key(1)) is None

    def test_memory_stays_bounded_under_churn(self):
        cache = ResultCache(max_entries=8)
        for index in range(100):
            cache.put(_key(index), _outcome(_key(index)))
        assert len(cache) == 8
        assert cache.stats.evictions == 92

    def test_disk_tier_is_not_evicted(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        cache.put(_key(0), _outcome(_key(0)))
        cache.put(_key(1), _outcome(_key(1)))
        assert cache.stats.evictions == 1
        # The memory slot is gone but the disk tier still answers (and the
        # hit is promoted back into memory, evicting the other key).
        assert cache.get(_key(0)) == _outcome(_key(0))
        assert cache.stats.corrupt == 0

    def test_unbounded_by_default(self):
        cache = ResultCache()
        for index in range(100):
            cache.put(_key(index), _outcome(_key(index)))
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


# --------------------------------------------------------------------------- #
# Concurrent writers on the disk tier (the online server's access pattern)
# --------------------------------------------------------------------------- #
class TestConcurrentWriters:
    def test_concurrent_writers_to_distinct_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        errors = []

        def write_many(worker: int):
            try:
                for index in range(20):
                    key = f"{worker}{index:x}".ljust(64, "b")
                    cache.put(key, _outcome(key))
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=write_many, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert len(cache) == 80
        fresh = ResultCache(tmp_path, memory=False)  # re-read from disk only
        for worker in range(4):
            for index in range(20):
                key = f"{worker}{index:x}".ljust(64, "b")
                assert fresh.get(key) == _outcome(key)
        assert fresh.stats.corrupt == 0

    def test_concurrent_writers_to_the_same_key(self, tmp_path):
        # The server's coalescing makes this rare, but distinct processes
        # may still race on one key; last-writer-wins with no torn reads.
        cache = ResultCache(tmp_path, memory=False)
        key = "cc" * 32
        barrier = threading.Barrier(4)
        errors = []

        def hammer():
            try:
                barrier.wait(10.0)
                for _ in range(25):
                    cache.put(key, _outcome(key))
                    found = cache.get(key)
                    assert found == _outcome(key)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert cache.stats.corrupt == 0
        assert ResultCache(tmp_path, memory=False).get(key) == _outcome(key)

    def test_disk_bytes_skips_entries_that_vanish_mid_scan(self, tmp_path):
        # Regression: a racing eviction/clear() unlinking a file between
        # glob and stat used to raise FileNotFoundError out of every
        # status/metrics surface.  A broken symlink reproduces the race
        # deterministically: glob lists it, stat() fails.
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, _outcome(key))
        ghost = tmp_path / "cd" / f"{'cd' * 32}.json"
        ghost.parent.mkdir(parents=True, exist_ok=True)
        ghost.symlink_to(tmp_path / "nowhere.json")
        assert cache.disk_bytes() == (tmp_path / key[:2] /
                                      f"{key}.json").stat().st_size

    def test_disk_bytes_survives_concurrent_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        errors = []
        stop = threading.Event()

        def churn():
            try:
                while not stop.is_set():
                    for worker in range(6):
                        key = f"{worker}e".ljust(64, "e")
                        cache.put(key, _outcome(key))
                    cache.clear()
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        def measure():
            try:
                while not stop.is_set():
                    assert cache.disk_bytes() >= 0
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=churn),
                   threading.Thread(target=measure)]
        for thread in threads:
            thread.start()
        time.sleep(1.0)  # sleep-ok: fixed race window for the contention probe
        stop.set()
        for thread in threads:
            thread.join(30.0)
        assert not errors, errors[:1]

    def test_no_stray_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        threads = [threading.Thread(
            target=lambda w=w: cache.put(f"{w}{w}".ljust(64, "d"),
                                         _outcome(f"{w}{w}".ljust(64, "d"))))
            for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        strays = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert strays == []
