"""Tests for the state-vector simulator."""

import math

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.unitary import circuit_unitary
from repro.sim.statevector import (
    StatevectorSimulator,
    random_product_state,
    state_fidelity,
    zero_state,
)


SIM = StatevectorSimulator()


class TestBasics:
    def test_zero_state(self):
        state = zero_state(3)
        assert state.shape == (8,)
        assert state[0] == 1.0

    def test_empty_circuit_is_identity(self):
        assert np.allclose(SIM.run(Circuit(2)), zero_state(2))

    def test_x_flips_qubit(self):
        state = SIM.run(Circuit(2).x(0))
        assert np.allclose(state, [0, 1, 0, 0])
        state = SIM.run(Circuit(2).x(1))
        assert np.allclose(state, [0, 0, 1, 0])

    def test_bell_state(self):
        state = SIM.run(Circuit(2).h(0).cx(0, 1))
        expected = np.array([1, 0, 0, 1]) / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_ghz_state(self):
        from repro.workloads import ghz
        state = SIM.run(ghz(4))
        assert abs(state[0]) == pytest.approx(1 / math.sqrt(2))
        assert abs(state[-1]) == pytest.approx(1 / math.sqrt(2))

    def test_swap_gate_exchanges_amplitudes(self):
        circ = Circuit(2).x(0).swap(0, 1)
        assert np.allclose(SIM.run(circ), [0, 0, 1, 0])

    def test_measurement_and_barrier_ignored(self):
        circ = Circuit(1).h(0).barrier(0).measure(0)
        assert np.allclose(SIM.run(circ), SIM.run(Circuit(1).h(0)))

    def test_rejects_oversized_circuits(self):
        simulator = StatevectorSimulator(max_qubits=3)
        with pytest.raises(ValueError):
            simulator.run(Circuit(4))

    def test_initial_state_dimension_checked(self):
        with pytest.raises(ValueError):
            SIM.run(Circuit(2), initial_state=np.ones(3, dtype=complex))

    def test_three_qubit_gate_rejected(self):
        from repro.core.gates import Gate, GateSpec
        spec = GateSpec("ghost", num_qubits=3)
        gate = Gate("ghost", (0, 1, 2), spec=spec)
        with pytest.raises(ValueError):
            StatevectorSimulator.apply_gate(zero_state(3), gate, 3)


class TestAgainstFullUnitary:
    @pytest.mark.parametrize("builder", [
        lambda: Circuit(2).h(0).cx(0, 1).t(1).cx(1, 0),
        lambda: Circuit(3).h(0).cx(0, 2).rz(0.3, 2).swap(0, 1).cz(1, 2),
        lambda: Circuit(3).u3(0.1, 0.2, 0.3, 0).cx(2, 0).ry(0.7, 1).cu1(0.4, 0, 2),
        lambda: Circuit(4).h(3).cx(3, 0).rzz(0.5, 1, 2).cx(0, 2),
    ])
    def test_simulator_matches_dense_unitary(self, builder):
        circuit = builder()
        rng = np.random.default_rng(42)
        state = random_product_state(circuit.num_qubits, rng)
        via_simulator = SIM.run(circuit, initial_state=state.copy())
        via_unitary = circuit_unitary(circuit) @ state
        assert np.allclose(via_simulator, via_unitary)

    def test_qft_matches_unitary(self):
        from repro.workloads import qft
        circuit = qft(4)
        state = SIM.run(circuit)
        expected = circuit_unitary(circuit) @ zero_state(4)
        assert np.allclose(state, expected)


class TestUtilities:
    def test_random_product_state_normalised(self):
        rng = np.random.default_rng(7)
        state = random_product_state(5, rng)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_probabilities_sum_to_one(self):
        probabilities = SIM.probabilities(Circuit(3).h(0).cx(0, 1).h(2))
        assert probabilities.sum() == pytest.approx(1.0)

    def test_expectation_z(self):
        assert SIM.expectation_z(Circuit(1), 0) == pytest.approx(1.0)
        assert SIM.expectation_z(Circuit(1).x(0), 0) == pytest.approx(-1.0)
        assert SIM.expectation_z(Circuit(1).h(0), 0) == pytest.approx(0.0, abs=1e-9)

    def test_state_fidelity(self):
        a = zero_state(2)
        b = SIM.run(Circuit(2).x(0))
        assert state_fidelity(a, a) == pytest.approx(1.0)
        assert state_fidelity(a, b) == pytest.approx(0.0)

    def test_fidelity_invariant_under_global_phase(self):
        a = zero_state(1)
        assert state_fidelity(a, np.exp(1j * 0.7) * a) == pytest.approx(1.0)
