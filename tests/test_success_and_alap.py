"""Tests for the ESP estimator (`repro.sim.success`) and ALAP scheduling."""

import math

import pytest

from repro.arch.calibration import TABLE_I, DeviceCalibration
from repro.arch.devices import get_device
from repro.arch.durations import GateDurationMap, Technology
from repro.core.circuit import Circuit
from repro.mapping.codar.remapper import CodarRouter
from repro.sim.scheduler import alap_schedule, asap_schedule
from repro.sim.success import compare_success, estimate_success
from repro.workloads import generators as gen

DUR = GateDurationMap(single=1, two=2, swap=6)
Q20 = TABLE_I["ibm_q20"]


# --------------------------------------------------------------------------- #
# ALAP scheduling
# --------------------------------------------------------------------------- #
class TestAlapSchedule:
    def test_same_makespan_as_asap(self):
        for circuit in (gen.qft(5), gen.ghz(6), gen.random_circuit(6, 80, seed=1)):
            asap = asap_schedule(circuit, DUR)
            alap = alap_schedule(circuit, DUR)
            assert alap.makespan == asap.makespan

    def test_no_gate_starts_before_zero(self):
        circuit = gen.random_circuit(5, 60, seed=4)
        alap = alap_schedule(circuit, DUR)
        assert all(sg.start >= 0 for sg in alap.gates)

    def test_per_qubit_order_and_no_overlap(self):
        circuit = gen.random_circuit(6, 100, seed=9)
        alap = alap_schedule(circuit, DUR)
        per_qubit: dict[int, list] = {}
        for sg in alap.gates:
            for q in sg.gate.qubits:
                per_qubit.setdefault(q, []).append((sg.start, sg.finish))
        for intervals in per_qubit.values():
            intervals.sort()
            for (_s1, f1), (s2, _f2) in zip(intervals, intervals[1:]):
                assert f1 <= s2

    def test_gates_pushed_late(self):
        """A lone leading gate should move to the end of the schedule under ALAP."""
        circuit = Circuit(2).h(0).cx(1, 1 - 1)  # h(0); cx(1, 0)
        # Use a circuit where qubit 1 idles first: h(1) at time 0 under ASAP,
        # but ALAP can delay it until just before the CX.
        circuit = Circuit(3)
        circuit.h(2)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        asap = asap_schedule(circuit, DUR)
        alap = alap_schedule(circuit, DUR)
        h_asap = next(sg for sg in asap.gates if sg.gate.name == "h")
        h_alap = next(sg for sg in alap.gates if sg.gate.name == "h")
        assert h_alap.start > h_asap.start

    def test_durations_preserved(self):
        circuit = gen.qft(4)
        alap = alap_schedule(circuit, DUR)
        for sg in alap.gates:
            if not sg.gate.is_barrier:
                assert sg.duration == DUR.duration_of(sg.gate)

    def test_empty_circuit(self):
        alap = alap_schedule(Circuit(3), DUR)
        assert alap.makespan == 0 and alap.gates == []

    def test_barrier_synchronises(self):
        circuit = Circuit(2).h(0)
        circuit.barrier()
        circuit.h(1)
        alap = alap_schedule(circuit, DUR)
        first_h = next(sg for sg in alap.gates if sg.gate.qubits == (0,))
        second_h = next(sg for sg in alap.gates if sg.gate.qubits == (1,))
        assert first_h.finish <= second_h.start + 1e-9


# --------------------------------------------------------------------------- #
# Estimated success probability
# --------------------------------------------------------------------------- #
class TestEstimateSuccess:
    def test_probability_in_unit_interval(self):
        circuit = gen.qft(5)
        estimate = estimate_success(circuit, Q20)
        assert 0.0 < estimate.probability <= 1.0

    def test_perfect_calibration_gives_probability_one(self):
        perfect = DeviceCalibration(
            name="perfect", technology=Technology.SUPERCONDUCTING, num_qubits=8,
            one_qubit_gates=("x",), two_qubit_gates=("cx",),
            fidelity_1q=1.0, fidelity_2q=1.0, readout_fidelity=1.0,
            duration_1q_ns=100.0, duration_2q_ns=200.0,
            t1_ns=math.inf, t2_ns=math.inf)
        estimate = estimate_success(gen.ghz(5), perfect)
        assert estimate.probability == pytest.approx(1.0)

    def test_more_gates_lower_probability(self):
        small = estimate_success(gen.ghz(4), Q20)
        large = estimate_success(gen.random_circuit(4, 200, seed=3), Q20)
        assert large.probability < small.probability

    def test_swap_counts_as_three_cx(self):
        plain = Circuit(4).cx(0, 1)
        with_swap = Circuit(4).cx(0, 1).swap(2, 3)
        a = estimate_success(plain, Q20)
        b = estimate_success(with_swap, Q20)
        assert b.num_two_qubit_gates == a.num_two_qubit_gates + 3
        assert b.gate_fidelity_product == pytest.approx(
            a.gate_fidelity_product * Q20.fidelity_2q ** 3)

    def test_measurements_use_readout_fidelity(self):
        circuit = Circuit(3).h(0).measure_all()
        estimate = estimate_success(circuit, Q20)
        assert estimate.num_measurements == 3
        assert estimate.readout_factor == pytest.approx(Q20.readout_fidelity ** 3)

    def test_longer_schedule_decoheres_more(self):
        fast = GateDurationMap(single=1, two=2, swap=6)
        slow = GateDurationMap(single=10, two=20, swap=60)
        circuit = gen.qft(5)
        estimate_fast = estimate_success(circuit, Q20, durations=fast)
        estimate_slow = estimate_success(circuit, Q20, durations=slow)
        assert estimate_slow.decoherence_factor < estimate_fast.decoherence_factor

    def test_infinite_coherence_means_no_decay(self):
        ion = TABLE_I["ion_q5"]  # T1 = inf in Table I
        circuit = gen.ghz(4)
        estimate = estimate_success(circuit, ion)
        assert estimate.decoherence_factor <= 1.0
        assert estimate.probability > 0.0

    def test_breakdown_row_keys(self):
        row = estimate_success(gen.ghz(3), Q20).as_row()
        assert {"esp", "gate_product", "decoherence", "readout"} <= set(row)

    def test_compare_success_reports_router_names(self):
        device = get_device("ibm_q20_tokyo")
        circuit = gen.qft(5)
        result = CodarRouter().run(circuit, device)
        rows = compare_success([result], Q20)
        assert rows[0]["router"] == "codar"
        assert 0.0 < rows[0]["esp"] <= 1.0

    def test_routed_circuit_has_lower_esp_than_logical(self):
        """Routing adds SWAPs and stretches the schedule, so ESP must drop."""
        device = get_device("ibm_q16_melbourne")
        circuit = gen.qft(6)
        result = CodarRouter().run(circuit, device)
        logical = estimate_success(circuit, Q20)
        routed = estimate_success(result.routed, Q20)
        if result.swap_count > 0:
            assert routed.probability < logical.probability
