"""Multi-tenancy: identity normalisation, fair dequeue, quotas, metrics,
per-tenant SLO alerts and the gateway's tenant-aware monotone merge.

The HTTP tests run real servers/gateways on ephemeral ports, same as
``test_server.py`` — the whole point of the tenant header is that it crosses
the real request path.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cluster import ClusterGateway
from repro.obs.alerts import AlertManager, BurnRateRule
from repro.obs.dashboard import render_dashboard
from repro.obs.monitor import Monitor
from repro.server import (CompileClient, CompileServer, JobQueue, ServerError,
                          TenantQuotaError, QueueFullError, normalize_tenant)
from repro.service import make_job
from repro.workloads.generators import ghz


def _job(n: int = 3, seed: int | None = None):
    return make_job(ghz(n), "ibm_q20_tokyo", "codar", seed=seed)


def _monitor_off():
    """Never self-ticks (huge interval); tests drive ticks explicitly."""
    return {"interval_s": 3600.0, "windows": (10.0, 30.0, 60.0),
            "for_s": 0.0, "resolve_s": 0.0, "tenant_slos": True}


# --------------------------------------------------------------------------- #
# Tenant identity
# --------------------------------------------------------------------------- #
class TestNormalizeTenant:
    def test_valid_names_pass_through(self):
        assert normalize_tenant("alice") == "alice"
        assert normalize_tenant("  team-a.prod_2  ") == "team-a.prod_2"
        assert normalize_tenant("A" * 64) == "A" * 64

    def test_missing_or_empty_normalises_to_default(self):
        assert normalize_tenant(None) == "default"
        assert normalize_tenant("") == "default"
        assert normalize_tenant("   ") == "default"

    def test_invalid_names_normalise_to_default(self):
        # Charset is restricted so tenant names embed safely into Prometheus
        # label values and structured-log lines.
        assert normalize_tenant('evil"tenant') == "default"
        assert normalize_tenant("has space") == "default"
        assert normalize_tenant("-leading-dash") == "default"
        assert normalize_tenant("A" * 65) == "default"


# --------------------------------------------------------------------------- #
# Weighted-fair dequeue (deficit round-robin)
# --------------------------------------------------------------------------- #
class TestTenantFairness:
    def test_dequeue_share_matches_weights(self):
        queue = JobQueue(tenant_weights={"a": 3.0, "b": 1.0})
        for index in range(40):
            queue.submit(_job(seed=index), tenant="a")
            queue.submit(_job(seed=1000 + index), tenant="b")
        order = [queue.pop(0).tenant for _ in range(80)]
        # While both tenants are backlogged the 3:1 weight is exact.
        assert order[:40].count("a") == 30
        assert order[:40].count("b") == 10
        # Once `a` drains, `b` gets the whole machine — no banked credit.
        assert order.count("a") == 40 and order.count("b") == 40

    def test_unlisted_tenants_alternate_equally(self):
        queue = JobQueue()
        for index in range(6):
            queue.submit(_job(seed=index), tenant="x")
            queue.submit(_job(seed=100 + index), tenant="y")
        order = [queue.pop(0).tenant for _ in range(12)]
        assert order.count("x") == 6 and order.count("y") == 6
        assert order[:2] in (["x", "y"], ["y", "x"])

    def test_priority_class_beats_fairness(self):
        queue = JobQueue(tenant_weights={"a": 100.0})
        queue.submit(_job(seed=1), priority=5, tenant="a")
        urgent, _ = queue.submit(_job(seed=2), priority=-1, tenant="b")
        assert queue.pop(0) is urgent

    def test_fractional_weight_still_makes_progress(self):
        queue = JobQueue(tenant_weights={"slow": 0.34})
        for index in range(5):
            queue.submit(_job(seed=index), tenant="slow")
            queue.submit(_job(seed=100 + index), tenant="fast")
        order = [queue.pop(0).tenant for _ in range(6)]
        assert "slow" in order  # credit accumulates across laps

    def test_escalation_across_tenants_pops_once(self):
        queue = JobQueue()
        job = _job(seed=7)
        ticket, coalesced = queue.submit(job, priority=10, tenant="a")
        twin, twin_coalesced = queue.submit(job, priority=-1, tenant="b")
        assert not coalesced and twin_coalesced and twin is ticket
        assert ticket.priority == -1
        assert ticket.tenant == "a"  # the leader keeps the ticket
        assert queue.depth == 1
        assert queue.pop(0) is ticket
        # The stale copy left in the old class must not pop again.
        assert queue.pop(0) is None
        assert queue.depth == 0
        assert queue.tenant_depths() == {}

    def test_tenant_depths_track_queue_contents(self):
        queue = JobQueue()
        queue.submit(_job(seed=1), tenant="a")
        queue.submit(_job(seed=2), tenant="a")
        queue.submit(_job(seed=3), tenant="b")
        assert queue.tenant_depths() == {"a": 2, "b": 1}
        queue.pop(0)
        depths = queue.tenant_depths()
        assert sum(depths.values()) == 2


# --------------------------------------------------------------------------- #
# Per-tenant quotas
# --------------------------------------------------------------------------- #
class TestTenantQuotas:
    def test_quota_throttles_only_the_offender(self):
        queue = JobQueue(tenant_quotas={"alice": 2})
        queue.submit(_job(seed=1), tenant="alice")
        queue.submit(_job(seed=2), tenant="alice")
        with pytest.raises(TenantQuotaError) as excinfo:
            queue.submit(_job(seed=3), tenant="alice")
        assert isinstance(excinfo.value, QueueFullError)  # same retry path
        assert excinfo.value.tenant == "alice"
        queue.submit(_job(seed=4), tenant="bob")  # others unaffected
        assert queue.tenant_throttles() == {"alice": 1}

    def test_default_quota_covers_unlisted_tenants(self):
        queue = JobQueue(default_tenant_quota=1)
        queue.submit(_job(seed=1), tenant="anyone")
        with pytest.raises(TenantQuotaError):
            queue.submit(_job(seed=2), tenant="anyone")

    def test_coalesced_submission_is_quota_free(self):
        queue = JobQueue(tenant_quotas={"alice": 1})
        job = _job(seed=1)
        queue.submit(job, tenant="alice")
        # Same key again: attaches to in-flight work, never charged.
        ticket, coalesced = queue.submit(job, tenant="alice")
        assert coalesced and ticket.coalesced == 1

    def test_quota_frees_as_jobs_start_running(self):
        queue = JobQueue(tenant_quotas={"alice": 1})
        queue.submit(_job(seed=1), tenant="alice")
        queue.pop(0)  # running jobs do not occupy queue quota
        queue.submit(_job(seed=2), tenant="alice")


# --------------------------------------------------------------------------- #
# HTTP surface: header, 429, metrics attribution
# --------------------------------------------------------------------------- #
class TestTenantHTTP:
    def test_quota_429s_only_the_offending_tenant(self):
        with CompileServer(port=0, workers=1, monitor=False,
                           tenant_quotas={"alice": 2}) as server:
            server.scheduler.pause()
            time.sleep(0.2)  # sleep-ok: let an in-pop worker settle
            alice = CompileClient(server.url, retries=0, tenant="alice")
            bob = CompileClient(server.url, retries=0, tenant="bob")
            for seed in (1, 2):
                reply = alice.submit(_job(seed=seed))
                assert reply["status"] == "queued"
                assert reply["tenant"] == "alice"
            with pytest.raises(ServerError) as excinfo:
                alice.submit(_job(seed=3))
            assert excinfo.value.status == 429
            assert "quota" in str(excinfo.value)
            assert bob.submit(_job(seed=4))["status"] == "queued"
            assert server.queue.tenant_throttles() == {"alice": 1}
            tenants = server.metrics.snapshot()["tenants"]
            assert tenants["alice"]["throttled"] == 1
            assert tenants["bob"]["throttled"] == 0
            health = server.health()
            assert health["queue_tenants"] == {"alice": 2, "bob": 1}
            server.scheduler.resume()

    def test_unknown_tenant_header_normalises_to_default(self):
        with CompileServer(port=0, workers=1, monitor=False) as server:
            client = CompileClient(server.url, tenant='bad tenant"name')
            reply = client.submit(_job(seed=1), wait=True, timeout=30.0)
            assert reply["tenant"] == "default"

    def test_cross_tenant_coalescing_shares_work_splits_attribution(self):
        with CompileServer(port=0, workers=1, monitor=False) as server:
            server.scheduler.pause()
            time.sleep(0.2)  # sleep-ok: let in-pop workers settle behind the pause gate
            job = _job(seed=42)
            alice = CompileClient(server.url, tenant="alice")
            bob = CompileClient(server.url, tenant="bob")
            lead = alice.submit(job)
            follow = bob.submit(job)
            assert not lead["coalesced"] and follow["coalesced"]
            server.scheduler.resume()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if server.metrics.snapshot()["completed"]:
                    break
                time.sleep(0.05)  # sleep-ok: bounded poll for completion counter
            tenants = server.metrics.snapshot()["tenants"]
            # One compilation (alice led, so completion is hers); bob's
            # submission is attributed to bob as a coalesced admit.
            assert tenants["alice"]["submitted"] == 1
            assert tenants["alice"]["completed"] == 1
            assert tenants["bob"]["coalesced"] == 1
            assert tenants["bob"].get("completed", 0) == 0

    def test_tenant_labels_flow_to_windows_and_dashboard(self):
        with CompileServer(port=0, workers=1,
                           monitor=_monitor_off()) as server:
            server.monitor.tick()
            alice = CompileClient(server.url, tenant="alice")
            bob = CompileClient(server.url, tenant="bob")
            assert alice.compile(_job(seed=1)).ok
            assert alice.compile(_job(seed=2)).ok
            assert bob.compile(_job(seed=3)).ok
            server.monitor.tick()
            # Prometheus exposition carries the tenant labels.
            text = alice.metrics_text()
            assert 'repro_server_tenant_jobs_completed_total{tenant="alice"} 2' in text
            assert ('repro_server_tenant_job_service_seconds_count'
                    '{tenant="bob"}') in text
            history = alice.metrics_history()
            rows = history["windows"]["10s"]["tenants"]
            assert rows["alice"]["counters"]["completed"] == 2.0
            assert rows["bob"]["counters"]["completed"] == 1.0
            frame = render_dashboard(url=server.url, health=None,
                                     history=history, slo=None, alerts=None,
                                     color=False)
            assert "tenants (10s)" in frame
            assert "alice" in frame and "bob" in frame
            # Per-tenant SLOs instantiated from the default templates.
            slo = alice.slo()
            assert "job-availability:alice" in slo["slos"]
            assert "job-availability:bob" in slo["slos"]


# --------------------------------------------------------------------------- #
# Gateway: header forwarding + label-aware monotone merge
# --------------------------------------------------------------------------- #
class _StubShardHandler(BaseHTTPRequestHandler):
    """A fake shard whose ``/metrics`` text the test rewrites at will."""

    def do_GET(self):  # noqa: N802 — stdlib naming
        if self.path == "/metrics":
            body = self.server.metrics_text.encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
        else:
            body = b'{"status": "ok"}'
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args):  # noqa: A003 — silence test noise
        pass


class _StubShard:
    def __init__(self):
        self._httpd = ThreadingHTTPServer(("127.0.0.1", 0), _StubShardHandler)
        self._httpd.metrics_text = ""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        host, port = self._httpd.server_address[:2]
        self.url = f"http://{host}:{port}"

    def set_metrics(self, text: str) -> None:
        self._httpd.metrics_text = text

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(5.0)


class TestGatewayTenantMerge:
    def test_merge_stays_monotone_across_shard_restart(self):
        shard = _StubShard()
        try:
            with ClusterGateway([shard.url], health_interval=30.0,
                                monitor=False) as gateway:
                shard.set_metrics(
                    "repro_server_jobs_completed_total 100\n"
                    'repro_server_tenant_jobs_completed_total{tenant="alice"} 60\n'
                    "repro_server_queue_depth 5\n")
                merged, _, _ = gateway._scrape_merged()
                assert merged["repro_server_jobs_completed_total"] == 100.0
                # The shard "restarts": counters reset far below their last
                # raw reading.  The merge banks the lost progress.
                shard.set_metrics(
                    "repro_server_jobs_completed_total 5\n"
                    'repro_server_tenant_jobs_completed_total{tenant="alice"} 2\n'
                    "repro_server_queue_depth 1\n")
                merged, _, _ = gateway._scrape_merged()
                assert merged["repro_server_jobs_completed_total"] == 105.0
                assert merged[
                    'repro_server_tenant_jobs_completed_total{tenant="alice"}'
                ] == 62.0
                # Gauges are NOT offset — a restarted shard's depth really
                # is small again.
                assert merged["repro_server_queue_depth"] == 1.0
                # Post-restart progress keeps counting from the new base.
                shard.set_metrics(
                    "repro_server_jobs_completed_total 7\n"
                    'repro_server_tenant_jobs_completed_total{tenant="alice"} 3\n'
                    "repro_server_queue_depth 0\n")
                merged, _, _ = gateway._scrape_merged()
                assert merged["repro_server_jobs_completed_total"] == 107.0
                assert merged[
                    'repro_server_tenant_jobs_completed_total{tenant="alice"}'
                ] == 63.0
                # A dead shard keeps contributing its last-known samples.
                shard.stop()
                merged, polled, contributing = gateway._scrape_merged()
                assert polled == 0 and contributing == 1
                assert merged["repro_server_jobs_completed_total"] == 107.0
        finally:
            shard.stop()

    def test_real_shard_restart_on_same_port_stays_monotone(self):
        with CompileServer(port=0, workers=1, monitor=False) as shard:
            port = shard.address[1]
            client = CompileClient(shard.url, tenant="alice")
            for seed in range(3):
                assert client.compile(_job(seed=seed)).ok
            with ClusterGateway([shard.url], health_interval=30.0,
                                monitor=False) as gateway:
                merged, _, _ = gateway._scrape_merged()
                key = 'repro_server_tenant_jobs_completed_total{tenant="alice"}'
                assert merged[key] == 3.0
                shard.stop()
                # Same port, fresh process state: counters restart from zero.
                with CompileServer(port=port, workers=1,
                                   monitor=False) as reborn:
                    reborn_client = CompileClient(reborn.url, tenant="alice")
                    assert reborn_client.compile(_job(seed=99)).ok
                    merged, _, _ = gateway._scrape_merged()
                    assert merged[key] == 4.0  # 3 banked + 1 fresh
                    assert merged["repro_server_jobs_completed_total"] >= 4.0

    def test_gateway_forwards_tenant_and_labels_cluster_metrics(self):
        with CompileServer(port=0, workers=1, monitor=False) as shard:
            with ClusterGateway([shard.url], health_interval=30.0,
                                monitor=False) as gateway:
                client = CompileClient(gateway.url, tenant="alice")
                assert client.compile(_job(seed=1)).ok
                # The shard saw the forwarded header...
                assert shard.metrics.snapshot()["tenants"]["alice"][
                    "completed"] == 1
                # ...and both layers expose the tenant dimension.
                text = gateway.aggregated_metrics()
                assert ('repro_cluster_tenant_jobs_completed_total'
                        '{tenant="alice"} 1') in text
                assert ('repro_cluster_gateway_tenant_requests_total'
                        '{tenant="alice"} 1') in text
                health = json.loads(json.dumps(gateway.health()))
                assert health["gateway"]["tenant_requests"] == {"alice": 1}


# --------------------------------------------------------------------------- #
# Per-tenant SLOs and burn-rate alerts
# --------------------------------------------------------------------------- #
def _fake_sample(completed, failed, tenants):
    return {"counters": {"completed": completed, "failed": failed},
            "gauges": {}, "histograms": {},
            "tenants": {name: {"counters": {"completed": ok, "failed": bad},
                               "histograms": {}}
                        for name, (ok, bad) in tenants.items()}}


class TestTenantSLOs:
    def test_noisy_tenant_pages_quiet_tenant_does_not(self):
        state = {"now": 1000.0,
                 "sample": _fake_sample(0, 0, {"noisy": (0, 0),
                                               "quiet": (0, 0)})}
        monitor = Monitor(lambda: state["sample"],
                          {"interval_s": 3600.0,
                           "windows": (10.0, 30.0, 60.0),
                           "for_s": 0.0, "resolve_s": 0.0,
                           "tenant_slos": True},
                          clock=lambda: state["now"])
        monitor.tick()
        state["now"] = 1005.0
        state["sample"] = _fake_sample(20, 8, {"noisy": (10, 8),
                                               "quiet": (10, 0)})
        events = monitor.tick()
        firing = {event["rule"] for event in events
                  if event["state"] == "firing"}
        assert "job-availability:noisy-fast-burn" in firing
        assert not any("quiet" in rule for rule in firing)
        results = monitor.evaluate_slos()
        assert results["job-availability:noisy"]["compliant"] is False
        assert results["job-availability:quiet"]["compliant"] is True
        # Tenant rules registered idempotently: another tick must not grow
        # the rule set again.
        rules_before = len(monitor.alerts.rules)
        monitor.tick()
        assert len(monitor.alerts.rules) == rules_before
        payload = monitor.alerts_payload()
        assert payload["firing"] >= 1
        assert any(rule["name"] == "job-availability:noisy-fast-burn"
                   for rule in payload["rules"])


class TestAlertEventRing:
    def test_event_history_bounded_with_dropped_counter(self):
        rule = BurnRateRule(name="flappy", slo="s", short="1m", long="5m",
                            threshold=2.0, for_s=0.0, resolve_s=0.0)
        manager = AlertManager([rule], max_events=2, clock=lambda: 0.0)
        bad = {"windows": {"1m": {"burn_rate": 10.0},
                           "5m": {"burn_rate": 10.0}}}
        good = {"windows": {"1m": {"burn_rate": 0.0},
                            "5m": {"burn_rate": 0.0}}}
        for cycle in range(4):  # 8 transition events into a 2-slot ring
            manager.evaluate({"s": bad}, now=float(cycle * 2))
            manager.evaluate({"s": good}, now=float(cycle * 2 + 1))
        assert len(manager.events()) == 2
        assert manager.dropped_events == 6
