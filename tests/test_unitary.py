"""Unit tests for exact gate unitaries (repro.core.unitary)."""

import math

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.core.gates import GATE_SET, Gate
from repro.core.unitary import (
    circuit_unitary,
    expand_to,
    gate_unitary,
    matrices_commute,
)


def _is_unitary(matrix: np.ndarray) -> bool:
    dim = matrix.shape[0]
    return np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-10)


PARAMETRIC_DEFAULTS = {
    "rx": (0.3,), "ry": (0.7,), "rz": (1.1,), "p": (0.4,), "u1": (0.5,),
    "u2": (0.2, 0.9), "u3": (0.3, 0.5, 0.7), "u": (0.3, 0.5, 0.7),
    "crx": (0.3,), "cry": (0.4,), "crz": (0.6,), "cp": (0.8,),
    "cu1": (0.9,), "cu3": (0.2, 0.4, 0.6),
    "rxx": (0.5,), "ryy": (0.6,), "rzz": (0.7,),
}


class TestGateUnitaries:
    @pytest.mark.parametrize("name", [
        n for n, s in GATE_SET.items()
        if n not in ("measure", "reset", "barrier")
    ])
    def test_every_gate_matrix_is_unitary(self, name):
        spec = GATE_SET[name]
        params = PARAMETRIC_DEFAULTS.get(name, tuple(0.1 for _ in range(spec.num_params)))
        gate = Gate(name, tuple(range(spec.num_qubits)), params)
        matrix = gate_unitary(gate)
        assert matrix.shape == (1 << spec.num_qubits,) * 2
        assert _is_unitary(matrix)

    def test_non_unitary_instructions_raise(self):
        with pytest.raises(ValueError):
            gate_unitary(Gate("measure", (0,)))
        with pytest.raises(ValueError):
            gate_unitary(Gate("barrier", ()))

    def test_pauli_algebra(self):
        x = gate_unitary(Gate("x", (0,)))
        y = gate_unitary(Gate("y", (0,)))
        z = gate_unitary(Gate("z", (0,)))
        assert np.allclose(x @ y, 1j * z)

    def test_hadamard_conjugates_x_to_z(self):
        h = gate_unitary(Gate("h", (0,)))
        x = gate_unitary(Gate("x", (0,)))
        z = gate_unitary(Gate("z", (0,)))
        assert np.allclose(h @ x @ h, z)

    def test_t_squared_is_s(self):
        t = gate_unitary(Gate("t", (0,)))
        s = gate_unitary(Gate("s", (0,)))
        assert np.allclose(t @ t, s)

    def test_cx_little_endian_convention(self):
        # Control is gate.qubits[0] = least-significant bit of the index.
        cx = gate_unitary(Gate("cx", (0, 1)))
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0  # |q1=0, q0=1>  (control set)
        out = cx @ state
        assert np.allclose(out, [0, 0, 0, 1])  # target flipped -> |11>

    def test_swap_matrix(self):
        swap = gate_unitary(Gate("swap", (0, 1)))
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        assert np.allclose(swap @ state, [0, 0, 1, 0])

    def test_rz_u1_differ_only_by_phase(self):
        angle = 0.77
        rz = gate_unitary(Gate("rz", (0,), (angle,)))
        u1 = gate_unitary(Gate("u1", (0,), (angle,)))
        phase = np.exp(1j * angle / 2)
        assert np.allclose(phase * rz, u1)

    def test_rotation_composition(self):
        a, b = 0.3, 0.9
        composed = gate_unitary(Gate("rx", (0,), (a + b,)))
        product = gate_unitary(Gate("rx", (0,), (a,))) @ gate_unitary(Gate("rx", (0,), (b,)))
        assert np.allclose(composed, product)


class TestExpansion:
    def test_expand_single_qubit_to_two(self):
        x = gate_unitary(Gate("x", (0,)))
        full = expand_to(x, (1,), 2)
        # X on qubit 1: |00> -> |10> (index 0 -> 2)
        state = np.zeros(4, dtype=complex)
        state[0] = 1
        assert np.allclose(full @ state, [0, 0, 1, 0])

    def test_expand_preserves_unitarity(self):
        cx = gate_unitary(Gate("cx", (0, 1)))
        full = expand_to(cx, (2, 0), 3)
        assert _is_unitary(full)

    def test_circuit_unitary_bell(self):
        circ = Circuit(2).h(0).cx(0, 1)
        u = circuit_unitary(circ)
        state = u @ np.array([1, 0, 0, 0], dtype=complex)
        expected = np.array([1, 0, 0, 1], dtype=complex) / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_circuit_unitary_rejects_large_circuits(self):
        with pytest.raises(ValueError):
            circuit_unitary(Circuit(13))

    def test_matrices_commute(self):
        z = gate_unitary(Gate("z", (0,)))
        s = gate_unitary(Gate("s", (0,)))
        x = gate_unitary(Gate("x", (0,)))
        assert matrices_commute(z, s)
        assert not matrices_commute(z, x)
