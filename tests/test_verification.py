"""Tests for routing verification itself (it must catch broken routings)."""

import pytest

from repro.arch.devices import get_device
from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.mapping.base import RoutingResult
from repro.mapping.codar.remapper import CodarRouter
from repro.mapping.layout import Layout
from repro.mapping.verification import (
    check_coupling_compliance,
    check_equivalence,
    verify_routing,
)


def _fake_result(original, routed, device, initial=None, final=None):
    initial = initial or Layout.identity(device.num_qubits)
    final = final or initial.copy()
    return RoutingResult(
        router_name="fake", original=original, routed=routed, device=device,
        initial_layout=initial, final_layout=final, swap_count=0,
        weighted_depth=0.0, depth=routed.depth(),
    )


class TestCouplingCompliance:
    def test_accepts_compliant_circuit(self):
        device = get_device("line", num_qubits=3)
        circ = Circuit(3).cx(0, 1).cx(1, 2)
        assert check_coupling_compliance(_fake_result(circ, circ, device)) == []

    def test_flags_noncoupled_pair(self):
        device = get_device("line", num_qubits=3)
        routed = Circuit(3).cx(0, 2)
        violations = check_coupling_compliance(_fake_result(routed, routed, device))
        assert len(violations) == 1
        assert "(0, 2)" in violations[0]

    def test_single_qubit_gates_ignored(self):
        device = get_device("line", num_qubits=2)
        routed = Circuit(2).h(0).h(1)
        assert check_coupling_compliance(_fake_result(routed, routed, device)) == []


class TestEquivalence:
    def test_detects_wrong_gate(self):
        device = get_device("line", num_qubits=2)
        original = Circuit(2).h(0).cx(0, 1)
        wrong = Circuit(2).h(0).cx(1, 0)  # control/target flipped
        assert not check_equivalence(_fake_result(original, wrong, device))

    def test_detects_missing_gate(self):
        device = get_device("line", num_qubits=2)
        original = Circuit(2).h(0).cx(0, 1)
        missing = Circuit(2).h(0)
        assert not check_equivalence(_fake_result(original, missing, device))

    def test_accepts_commuting_reorder(self):
        device = get_device("line", num_qubits=3)
        original = Circuit(3).cx(0, 1).t(2)
        reordered = Circuit(3).t(2).cx(0, 1)
        assert check_equivalence(_fake_result(original, reordered, device))

    def test_accepts_valid_swap_folding(self):
        device = get_device("line", num_qubits=3)
        original = Circuit(3).cx(0, 2)
        routed = Circuit(3)
        routed.append(Gate("swap", (0, 1), tag="routing"))
        routed.cx(1, 2)
        assert check_equivalence(_fake_result(original, routed, device))

    def test_rejects_untagged_swap_that_changes_semantics(self):
        device = get_device("line", num_qubits=3)
        original = Circuit(3).cx(0, 2)
        routed = Circuit(3).swap(0, 1).cx(1, 2)  # program swap: extra unitary
        assert not check_equivalence(_fake_result(original, routed, device))

    def test_respects_initial_layout(self):
        device = get_device("line", num_qubits=2)
        original = Circuit(2).x(0)
        # With layout {logical0 -> physical1}, the routed X must act on phys 1.
        layout = Layout([1, 0])
        good = Circuit(2).x(1)
        bad = Circuit(2).x(0)
        assert check_equivalence(_fake_result(original, good, device, initial=layout))
        assert not check_equivalence(_fake_result(original, bad, device, initial=layout))

    def test_too_large_circuit_rejected(self):
        device = get_device("grid", rows=4, cols=4)
        original = Circuit(13)
        with pytest.raises(ValueError):
            check_equivalence(_fake_result(original, original, device))


class TestVerifyRouting:
    def test_passes_on_real_routing(self):
        device = get_device("grid", rows=2, cols=3)
        circ = Circuit(5).h(0).cx(0, 4).cx(1, 3).t(2).cx(2, 4)
        verify_routing(CodarRouter().run(circ, device))

    def test_raises_on_violation(self):
        device = get_device("line", num_qubits=3)
        original = Circuit(3).cx(0, 2)
        with pytest.raises(AssertionError, match="coupling violations"):
            verify_routing(_fake_result(original, original, device))

    def test_semantics_skippable(self):
        device = get_device("line", num_qubits=3)
        original = Circuit(3).cx(0, 1)
        wrong = Circuit(3).cx(1, 2)
        # Coupling is fine, semantics is wrong, but the check is skipped.
        verify_routing(_fake_result(original, wrong, device), check_semantics=False)
        with pytest.raises(AssertionError, match="not equivalent"):
            verify_routing(_fake_result(original, wrong, device), check_semantics=True)
