"""Tests for the ASCII visualisation helpers and the command-line interface."""

import pytest

from repro.arch.durations import GateDurationMap
from repro.cli import build_parser, main
from repro.core.circuit import Circuit
from repro.sim.scheduler import asap_schedule
from repro.visualization import draw_circuit, draw_schedule

DUR = GateDurationMap(single=1, two=2, swap=6)


class TestDrawCircuit:
    def test_empty_register(self):
        assert draw_circuit(Circuit(0)) == "(empty circuit)"

    def test_single_qubit_gates_on_wire(self):
        text = draw_circuit(Circuit(2).h(0).t(1))
        lines = text.splitlines()
        assert lines[0].startswith("q0")
        assert "H" in lines[0]
        assert "T" in lines[1]

    def test_two_qubit_gate_connects_wires(self):
        text = draw_circuit(Circuit(3).cx(0, 2))
        lines = text.splitlines()
        assert "*" in lines[0]
        assert "|" in lines[1]
        assert "CX" in lines[2]

    def test_measure_rendered_as_m(self):
        assert "M" in draw_circuit(Circuit(1).measure(0))

    def test_barrier_rendered(self):
        text = draw_circuit(Circuit(2).h(0).barrier(0, 1).h(1))
        assert "‖" in text

    def test_long_circuit_truncated(self):
        circ = Circuit(1)
        for _ in range(200):
            circ.h(0)
        text = draw_circuit(circ, max_columns=60)
        assert all(len(line) <= 70 for line in text.splitlines())
        assert "..." in text


class TestDrawSchedule:
    def test_empty_schedule(self):
        assert draw_schedule(asap_schedule(Circuit(1), DUR)) == "(empty schedule)"

    def test_gate_symbols_and_makespan(self):
        schedule = asap_schedule(Circuit(2).cx(0, 1).t(0), DUR)
        text = draw_schedule(schedule)
        assert "makespan = 3" in text
        assert "C" in text and "T" in text

    def test_durations_visible_as_box_lengths(self):
        schedule = asap_schedule(Circuit(2).swap(0, 1), DUR)
        text = draw_schedule(schedule)
        first_row = text.splitlines()[0]
        assert first_row.count("S") == 6  # a SWAP occupies six cycles

    def test_truncation_noted(self):
        circ = Circuit(1)
        for _ in range(500):
            circ.h(0)
        text = draw_schedule(asap_schedule(circ, DUR), max_columns=50)
        assert "truncated" in text


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "ibm_q20_tokyo" in out
        assert "google_sycamore54" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "Ion Q5" in capsys.readouterr().out

    def test_route_command_roundtrip(self, tmp_path, capsys):
        qasm = tmp_path / "bell.qasm"
        qasm.write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[3];\ncreg c[3];\nh q[0];\ncx q[0],q[2];\nmeasure q -> c;\n"
        )
        output = tmp_path / "routed.qasm"
        code = main(["route", str(qasm), "--device", "ibm_q16_melbourne",
                     "--output", str(output)])
        assert code == 0
        text = output.read_text()
        assert text.startswith("OPENQASM 2.0;")
        captured = capsys.readouterr()
        assert "weighted depth" in captured.err

    def test_route_command_sabre_to_stdout(self, tmp_path, capsys):
        qasm = tmp_path / "pair.qasm"
        qasm.write_text("qreg q[2];\ncx q[0],q[1];\n")
        code = main(["route", str(qasm), "--device", "ibm_q20_tokyo",
                     "--router", "sabre"])
        assert code == 0
        assert "cx" in capsys.readouterr().out

    def test_speedup_parser_options(self):
        args = build_parser().parse_args(["speedup", "--arch", "ibm_q20_tokyo",
                                          "--detailed"])
        assert args.arch == ["ibm_q20_tokyo"]
        assert args.detailed and not args.full

    def test_fidelity_parser(self):
        args = build_parser().parse_args(["fidelity"])
        assert args.command == "fidelity"

    def test_route_command_accepts_every_registered_router(self):
        for router in ("codar", "codar-noise-aware", "sabre", "astar", "trivial"):
            args = build_parser().parse_args(["route", "f.qasm",
                                              "--router", router])
            assert args.router == router

    def test_route_command_on_directed_device(self, tmp_path, capsys):
        qasm = tmp_path / "qx4.qasm"
        qasm.write_text("qreg q[4];\nh q[0];\ncx q[0],q[3];\ncx q[2],q[1];\n")
        code = main(["route", str(qasm), "--device", "ibm_qx4",
                     "--router", "astar"])
        assert code == 0
        assert "cx" in capsys.readouterr().out

    def test_baselines_command(self, capsys):
        assert main(["baselines", "--max-qubits", "4"]) == 0
        out = capsys.readouterr().out
        assert "geomean_speedup_vs_sabre" in out
        for router in ("codar", "sabre", "astar", "trivial"):
            assert router in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "--max-qubits", "4"]) == 0
        assert "average_slowdown_vs_full" in capsys.readouterr().out

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity", "--max-qubits", "4"]) == 0
        assert "2q/1q ratio" in capsys.readouterr().out

    def test_layouts_command(self, capsys):
        assert main(["layouts", "--max-qubits", "4"]) == 0
        assert "reverse_traversal_1" in capsys.readouterr().out

    def test_scaling_command(self, capsys):
        assert main(["scaling", "--qubits", "6", "--gates", "40", "80"]) == 0
        out = capsys.readouterr().out
        assert "us_per_gate" in out and "Growth factors" in out


class TestBatchCli:
    def test_batch_requires_circuits(self, capsys):
        assert main(["batch"]) == 2
        assert "no circuits" in capsys.readouterr().err

    def test_batch_rejects_unknown_router(self, capsys):
        assert main(["batch", "--suite", "--max-qubits", "4",
                     "--router", "bogus"]) == 2
        assert "unknown router" in capsys.readouterr().err

    def test_batch_over_files_and_suite(self, tmp_path, capsys):
        qasm = tmp_path / "bell.qasm"
        qasm.write_text("qreg q[2];\nh q[0];\ncx q[0],q[1];\n")
        code = main(["batch", str(qasm), "--suite", "--max-qubits", "3",
                     "--device", "ibm_q20_tokyo", "--device", "ibm_q16_melbourne",
                     "--router", "codar", "--router", "sabre"])
        assert code == 0
        captured = capsys.readouterr()
        assert "bell" in captured.out and "ghz_3" in captured.out
        assert "0 failures" in captured.err

    def test_batch_cache_warm_run_and_json(self, tmp_path, capsys):
        import json as json_module

        cache_dir = str(tmp_path / "cache")
        out_file = str(tmp_path / "out.json")
        argv = ["batch", "--suite", "--max-qubits", "3",
                "--cache-dir", cache_dir, "--json", out_file]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "cached" in captured.out
        assert "'hit_rate': 1.0" in captured.err
        records = json_module.loads(open(out_file).read())
        assert records and all(r["outcome"]["status"] == "ok" for r in records)

    def test_batch_parametric_device(self, capsys):
        assert main(["batch", "--suite", "--max-qubits", "3",
                     "--device", "grid_2x2"]) == 0
        assert "grid_2x2" in capsys.readouterr().out

    def test_batch_reports_oversized_skips(self, tmp_path, capsys):
        big = tmp_path / "big.qasm"
        big.write_text("qreg q[25];\ncx q[0],q[24];\n")
        assert main(["batch", str(big), "--device", "ibm_q20_tokyo"]) == 2
        err = capsys.readouterr().err
        assert "skipped: big (25q) does not fit ibm_q20_tokyo" in err
        assert "every (circuit, device) combination was skipped" in err

    def test_batch_malformed_file_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.qasm"
        bad.write_text("qreg q[2];\ncx q[0],q[9];\n")
        assert main(["batch", str(bad)]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_cache_command_reports_and_clears(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", "--suite", "--max-qubits", "3",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "entries   : 0" not in out
        assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        assert "entries   : 0" in capsys.readouterr().out

    def test_speedup_parser_accepts_service_options(self):
        args = build_parser().parse_args(["speedup", "--workers", "4",
                                          "--cache-dir", "/tmp/c"])
        assert args.workers == 4 and args.cache_dir == "/tmp/c"
