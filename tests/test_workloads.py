"""Tests for the workload generators and the benchmark suite registry."""

import math

import numpy as np
import pytest

from repro.core.circuit import Circuit
from repro.sim.statevector import StatevectorSimulator
from repro.workloads import (
    bernstein_vazirani,
    deutsch_jozsa,
    ghz,
    grover,
    qaoa_maxcut,
    qft,
    random_circuit,
    ripple_carry_adder,
    simon,
    supremacy_style,
    toffoli_chain,
)
from repro.workloads.reversible import (
    controlled_increment,
    hidden_weighted_bit,
    modular_adder,
    random_reversible,
    swap_test_network,
)
from repro.workloads.suite import (
    SUITE_SIZE,
    benchmark_names,
    benchmark_suite,
    famous_algorithms,
    get_benchmark,
)

SIM = StatevectorSimulator()


class TestTextbookGenerators:
    def test_qft_structure(self):
        circ = qft(4)
        counts = circ.count_ops()
        assert counts["h"] == 4
        assert counts["cu1"] == 6
        assert counts["swap"] == 2

    def test_qft_without_swaps(self):
        assert "swap" not in qft(4, with_swaps=False).count_ops()

    def test_qft_unitary_on_basis_state(self):
        # QFT of |0...0> is the uniform superposition.
        circ = qft(3, with_swaps=True)
        state = SIM.run(circ)
        assert np.allclose(np.abs(state), 1 / math.sqrt(8))

    def test_ghz_state_correct(self):
        state = SIM.run(ghz(5))
        expected = np.zeros(32, dtype=complex)
        expected[0] = expected[-1] = 1 / math.sqrt(2)
        assert np.allclose(state, expected)

    def test_bernstein_vazirani_recovers_secret(self):
        secret = 0b101
        circ = bernstein_vazirani(4, secret=secret)
        state = SIM.run(circ)
        probabilities = np.abs(state) ** 2
        # Data register (qubits 0..2) must equal the secret; ancilla is in |->.
        data_outcomes = probabilities.reshape(2, 8).sum(axis=0)
        assert data_outcomes[secret] == pytest.approx(1.0)

    def test_bernstein_vazirani_default_secret_all_ones(self):
        circ = bernstein_vazirani(5)
        assert circ.count_ops()["cx"] == 4

    def test_deutsch_jozsa_balanced_vs_constant(self):
        balanced = deutsch_jozsa(4, balanced=True)
        constant = deutsch_jozsa(4, balanced=False)
        assert balanced.count_ops().get("cx", 0) > 0
        assert constant.count_ops().get("cx", 0) == 0

    def test_grover_amplifies_marked_state(self):
        marked = 0b10
        circ = grover(3, iterations=2, marked=marked)
        probabilities = np.abs(SIM.run(circ)) ** 2
        assert int(np.argmax(probabilities)) == marked
        assert probabilities[marked] > 0.7

    def test_grover_gate_counts_grow_with_iterations(self):
        assert len(grover(4, iterations=2)) > len(grover(4, iterations=1))

    def test_simon_layout(self):
        circ = simon(6)
        assert circ.num_qubits == 6
        with pytest.raises(ValueError):
            simon(5)

    def test_qaoa_deterministic_given_seed(self):
        assert qaoa_maxcut(6, seed=3) == qaoa_maxcut(6, seed=3)
        assert qaoa_maxcut(6, seed=3) != qaoa_maxcut(6, seed=4)

    def test_qaoa_layers_scale_gate_count(self):
        assert len(qaoa_maxcut(8, layers=2)) > len(qaoa_maxcut(8, layers=1))

    def test_adder_computes_sum(self):
        # 2-bit adder: a=1, b=1 -> b should read 2 (binary 10), carry 0.
        bits = 2
        circ = Circuit(2 * bits + 2, name="adder_test")
        circ.x(1)          # a[0] = 1
        circ.x(1 + bits)   # b[0] = 1
        circ = circ.compose(ripple_carry_adder(bits))
        probabilities = np.abs(SIM.run(circ)) ** 2
        outcome = int(np.argmax(probabilities))
        b_value = (outcome >> (1 + bits)) & ((1 << bits) - 1)
        carry = (outcome >> (2 * bits + 1)) & 1
        assert b_value == 2
        assert carry == 0

    def test_toffoli_chain_validation(self):
        with pytest.raises(ValueError):
            toffoli_chain(2)
        assert toffoli_chain(4, repetitions=2).num_qubits == 4


class TestRandomGenerators:
    def test_random_circuit_reproducible(self):
        assert random_circuit(6, 100, seed=1) == random_circuit(6, 100, seed=1)
        assert random_circuit(6, 100, seed=1) != random_circuit(6, 100, seed=2)

    def test_random_circuit_two_qubit_fraction(self):
        circ = random_circuit(8, 1000, seed=5, two_qubit_fraction=0.3)
        fraction = circ.num_two_qubit_gates() / len(circ)
        assert 0.2 < fraction < 0.4

    def test_supremacy_style_grid_interactions(self):
        circ = supremacy_style(2, 3, cycles=4)
        assert circ.num_qubits == 6
        # CZ gates only between logical grid neighbours.
        for gate in circ.two_qubit_gates():
            a, b = gate.qubits
            ra, ca = divmod(a, 3)
            rb, cb = divmod(b, 3)
            assert abs(ra - rb) + abs(ca - cb) == 1

    def test_random_reversible_gate_mix(self):
        circ = random_reversible(6, 200, seed=9)
        counts = circ.count_ops()
        assert counts.get("cx", 0) > 0
        assert all(name in {"x", "cx", "h", "t", "tdg", "s", "sdg"} or name == "cx"
                   for name in counts)


class TestReversibleGenerators:
    def test_controlled_increment(self):
        circ = controlled_increment(5, repetitions=2)
        assert circ.num_qubits == 5
        assert len(circ) > 0

    def test_modular_adder_restores_operand(self):
        # The a register must be returned unchanged (reversibility check).
        bits = 2
        prep = Circuit(2 * bits + 1).x(0)
        circ = prep.compose(modular_adder(bits))
        probabilities = np.abs(SIM.run(circ)) ** 2
        outcome = int(np.argmax(probabilities))
        assert outcome & 0b11 == 0b01  # a register still reads 1

    def test_hidden_weighted_bit_dense(self):
        circ = hidden_weighted_bit(5)
        assert circ.num_two_qubit_gates() > 20

    def test_swap_test_validation(self):
        with pytest.raises(ValueError):
            swap_test_network(4)
        assert swap_test_network(5).num_qubits == 5


class TestSuiteRegistry:
    def test_suite_has_71_benchmarks(self):
        assert len(benchmark_suite()) == SUITE_SIZE == 71

    def test_three_36_qubit_outliers(self):
        large = [c for c in benchmark_suite() if c.num_qubits == 36]
        assert len(large) == 3

    def test_qubit_range_matches_paper(self):
        sizes = [c.num_qubits for c in benchmark_suite()]
        assert min(sizes) == 3
        assert max(sizes) == 36

    def test_sorted_by_qubit_count(self):
        sizes = [c.num_qubits for c in benchmark_suite()]
        assert sizes == sorted(sizes)

    def test_all_except_outliers_fit_q16(self):
        fitting = benchmark_suite(max_qubits=16)
        assert len(fitting) == 68

    def test_names_unique(self):
        names = benchmark_names()
        assert len(names) == len(set(names))

    def test_get_benchmark_builds_named_circuit(self):
        circ = get_benchmark("qft_8")
        assert circ.name == "qft_8"
        assert circ.num_qubits == 8

    def test_get_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("nonexistent_benchmark")

    def test_builds_are_cached(self):
        assert get_benchmark("ghz_5") is get_benchmark("ghz_5")

    def test_family_filter(self):
        qft_cases = benchmark_suite(families=["qft"])
        assert all(c.family == "qft" for c in qft_cases)
        assert len(qft_cases) == 6

    def test_case_metadata_consistent_with_circuit(self):
        for case in benchmark_suite(max_qubits=8):
            circuit = case.build()
            assert circuit.num_qubits == case.num_qubits
            assert len(circuit) > 0

    def test_fits_predicate(self):
        case = benchmark_suite()[0]
        assert case.fits(case.num_qubits)
        assert not case.fits(case.num_qubits - 1)

    def test_famous_algorithms_for_fidelity_experiment(self):
        algorithms = famous_algorithms()
        assert len(algorithms) == 7
        assert all(circ.num_qubits <= 6 for circ in algorithms)
        names = {circ.name for circ in algorithms}
        assert len(names) == 7
